//! The discrete-event engine: SOR workers contending for disks and cache.
//!
//! Reconstruction in the paper runs Stripe-Oriented Reconstruction (SOR,
//! §III-B): multiple processes, each responsible for a set of stripes, each
//! holding a slice of the buffer cache. The engine models every worker as a
//! *script* of operations — chunk reads (through the buffer cache), XOR
//! computations and spare-chunk writes — and interleaves the workers in
//! virtual-time order with a priority queue. Disk contention emerges
//! naturally: each disk serves FCFS, so a worker whose read lands on a busy
//! disk waits.
//!
//! The engine is policy-agnostic; FBF priorities ride along on each read op
//! and reach the policy through [`BufferCache::insert`].

use crate::array::ArrayMapping;
use crate::buffer::{BufferCache, Lookup};
use crate::disk::{DiskModel, DiskStats};
use crate::equeue::{CalendarQueue, EventQueue};
use crate::fault::{FailedRead, FaultCounters, FaultDraw, FaultPlan, ReadFailure};
use crate::hist::Histogram;
use crate::sched::{DiskSched, QueuedDisk};
use crate::time::SimTime;
use fbf_cache::{CacheStats, FbfConfig, FbfPolicy, FxHashMap, FxHashSet, PolicyKind, VdfPolicy};
use fbf_codes::ChunkId;
use fbf_obs::RequestClass;
use serde::{Deserialize, Serialize};

/// One operation of a worker's script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read a chunk through the buffer cache. `priority` is the FBF
    /// priority from the recovery scheme (1..=3); other policies ignore it.
    Read { chunk: ChunkId, priority: u8 },
    /// Pure computation (XOR, checksum) occupying the worker, no I/O.
    Compute { duration: SimTime },
    /// Parallel fan-out read; indexes into [`WorkerScript::gathers`].
    Gather { index: u32 },
    /// Write a recovered chunk to its disk's spare area (not cached).
    Write { chunk: ChunkId },
}

/// A parallel fan-out read: all chunks are requested at once (degraded
/// reads fan out to a whole parity chain; parallel repair reads do too).
/// The worker resumes when the slowest chunk arrives. Kept separate from
/// [`Op`] so scripts stay `Copy`-friendly in the common case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherOp {
    /// Chunks to fetch concurrently, with their FBF priorities.
    pub chunks: Vec<(ChunkId, u8)>,
}

/// The full operation sequence of one reconstruction worker.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerScript {
    /// Operations executed strictly in order; each starts when the
    /// previous completes.
    pub ops: Vec<Op>,
    /// Fan-out read groups referenced by [`Op::Gather`].
    pub gathers: Vec<GatherOp>,
    /// Traffic class every completion of this script is attributed to
    /// (defaults to [`RequestClass::Recovery`] — the planned repair
    /// campaign). The engine records each read's response into the
    /// matching per-class digest of [`RunReport::class_latency`].
    pub class: RequestClass,
}

impl WorkerScript {
    /// Number of read operations in the script (counting each gathered
    /// chunk individually).
    pub fn reads(&self) -> usize {
        self.ops
            .iter()
            .map(|o| match o {
                Op::Read { .. } => 1,
                Op::Gather { index } => self.gathers[*index as usize].chunks.len(),
                _ => 0,
            })
            .sum()
    }

    /// Append a fan-out read of `chunks` to the script.
    pub fn push_gather(&mut self, chunks: Vec<(ChunkId, u8)>) {
        let index = u32::try_from(self.gathers.len()).expect("gather count fits u32");
        self.gathers.push(GatherOp { chunks });
        self.ops.push(Op::Gather { index });
    }
}

/// How the buffer cache is divided among workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CacheSharing {
    /// Each worker owns `capacity / workers` chunks (the paper's SOR setup:
    /// "each process is allocated with a small part of cache").
    #[default]
    Partitioned,
    /// One cache shared by all workers (ablation).
    Shared,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Replacement policy under test.
    pub policy: PolicyKind,
    /// FBF-specific tunables; ignored unless `policy == PolicyKind::Fbf`.
    pub fbf: FbfConfig,
    /// Stripes currently under repair (stripe → damaged column) — the
    /// victim map consulted by `PolicyKind::Vdf`; other policies ignore
    /// it. `None` builds VDF with no victims (plain LRU). Fast-hashed:
    /// VDF looks the stripe up on every insert.
    pub victim_map: Option<std::sync::Arc<FxHashMap<u32, u16>>>,
    /// Total buffer-cache capacity, in chunks.
    pub cache_chunks: usize,
    /// Cache partitioning across workers.
    pub sharing: CacheSharing,
    /// Disk service model.
    pub disk_model: DiskModel,
    /// Head-scheduling discipline of each disk's request queue.
    pub sched: DiskSched,
    /// Failure injection: (disk index, service-time multiplier) for one
    /// degraded/aged disk. `None` = all disks healthy. Composes with
    /// [`FaultPlan::straggler`] (multipliers stack) for back-compat.
    pub straggler: Option<(usize, f64)>,
    /// Deterministic fault injection. [`FaultPlan::none()`] (the default)
    /// keeps the event loop bit-identical to a fault-free build: the only
    /// added cost is one well-predicted branch per operation.
    pub faults: FaultPlan,
    /// Buffer-cache access time (the paper: 0.5 ms).
    pub cache_hit_time: SimTime,
    /// Chunk payload size in bytes (the paper: 32 KB).
    pub chunk_bytes: u64,
    /// Chunk→disk/LBA mapping.
    pub mapping: ArrayMapping,
    /// Stripes in the data zone (spare area begins after it).
    pub data_stripes: u64,
    /// Emit fbf-obs run events (span + cache/queue/disk counters) at run
    /// boundaries. Off by default: nothing is emitted from the per-access
    /// hot loop either way, so enabling this does not perturb results.
    pub obs: bool,
}

impl EngineConfig {
    /// The paper's simulator constants for a given policy/cache/mapping.
    pub fn paper(
        policy: PolicyKind,
        cache_chunks: usize,
        mapping: ArrayMapping,
        data_stripes: u64,
    ) -> Self {
        EngineConfig {
            policy,
            fbf: FbfConfig::default(),
            victim_map: None,
            cache_chunks,
            sharing: CacheSharing::Partitioned,
            disk_model: DiskModel::paper_default(),
            sched: DiskSched::Fcfs,
            straggler: None,
            faults: FaultPlan::none(),
            cache_hit_time: SimTime::from_micros(500),
            chunk_bytes: 32 << 10,
            mapping,
            data_stripes,
            obs: false,
        }
    }
}

/// Latency distribution summary for one request class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Requests measured.
    pub count: u64,
    /// Sum of response times.
    pub total: SimTime,
    /// Worst response time.
    pub max: SimTime,
}

impl ResponseStats {
    /// Record one completed request's response time.
    pub fn record(&mut self, t: SimTime) {
        self.count += 1;
        self.total += t;
        self.max = self.max.max(t);
    }

    /// Mean response time in milliseconds (0 when nothing was measured).
    pub fn avg_millis(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_millis_f64() / self.count as f64
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &ResponseStats) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// Everything measured over one engine run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual time from start until the last worker finished — the
    /// paper's "reconstruction time".
    pub makespan: SimTime,
    /// Aggregated cache statistics (all workers).
    pub cache: CacheStats,
    /// Total chunk reads that reached the disks (the paper's "number of
    /// read operations during recovery").
    pub disk_reads: u64,
    /// Total spare-area writes.
    pub disk_writes: u64,
    /// Response-time summary of chunk *read* requests (hit or miss).
    pub read_response: ResponseStats,
    /// Full latency distribution of read requests (log buckets; p50/p95/
    /// p99 queries).
    pub read_latency: Histogram,
    /// Read-latency digests split by [`RequestClass`], indexed by
    /// [`RequestClass::index`]. Their counts partition
    /// `read_latency.count()` exactly: every read completion (hit or
    /// miss) lands in precisely one class digest.
    pub class_latency: [Histogram; RequestClass::COUNT],
    /// Response-time summary of spare writes.
    pub write_response: ResponseStats,
    /// Completion instant of every spare write, in completion order — the
    /// repair-progress curve (each write closes one lost chunk's window of
    /// vulnerability).
    pub write_completions: Vec<SimTime>,
    /// Per-disk counters.
    pub per_disk: Vec<DiskStats>,
    /// Disk reads split by disk *and* [`RequestClass`], indexed
    /// `[disk][class.index()]`. Sums over classes match
    /// `per_disk[d].reads`; the Recovery/Replan columns are the
    /// declustering rebuild-read balance input.
    pub per_disk_class_reads: Vec<[u64; RequestClass::COUNT]>,
    /// Fault-path counters; all zero when faults are disabled.
    pub faults: FaultCounters,
    /// Hard read failures, in the deterministic order they were hit.
    /// Each is an additional erasure the controller must re-plan around.
    pub failed_reads: Vec<FailedRead>,
}

impl RunReport {
    /// Deepest any disk's queue ever got — the run's queue-depth
    /// high-water mark. A *max* over per-disk high-waters (and across
    /// merged rounds), never a sum.
    pub fn queue_depth_max(&self) -> u64 {
        self.per_disk.iter().map(|d| d.max_queue).max().unwrap_or(0)
    }

    /// Per-disk read-balance: the busiest disk's read count over the
    /// per-disk mean — the declustering uniformity metric (1.0 is a
    /// perfectly even spread; 0.0 when no reads reached the disks).
    pub fn read_balance(&self) -> f64 {
        let total: u64 = self.per_disk.iter().map(|d| d.reads).sum();
        if total == 0 || self.per_disk.is_empty() {
            return 0.0;
        }
        let max = self.per_disk.iter().map(|d| d.reads).max().unwrap_or(0);
        let mean = total as f64 / self.per_disk.len() as f64;
        max as f64 / mean
    }

    /// Reads served by each disk on behalf of `class`, from
    /// [`RunReport::per_disk_class_reads`].
    pub fn class_reads_per_disk(&self, class: RequestClass) -> Vec<u64> {
        let i = class.index();
        self.per_disk_class_reads.iter().map(|c| c[i]).collect()
    }

    /// Rebuild-read skew: busiest disk's non-App reads over the all-disk
    /// mean (same max/mean shape as [`RunReport::read_balance`], but
    /// restricted to recovery traffic — the clustered-vs-declustered
    /// comparison metric). 0.0 when no rebuild reads reached the disks.
    pub fn rebuild_read_skew(&self) -> f64 {
        let app = RequestClass::App.index();
        let per: Vec<u64> = self
            .per_disk_class_reads
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|&(i, _)| i != app)
                    .map(|(_, &n)| n)
                    .sum::<u64>()
            })
            .collect();
        let total: u64 = per.iter().sum();
        if total == 0 || per.is_empty() {
            return 0.0;
        }
        let max = per.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / per.len() as f64;
        max as f64 / mean
    }
}

/// Build the per-worker cache slice vector for `workers` scripts exactly
/// as [`Engine::run_with_scratch`] does: one cache of the full capacity
/// under [`CacheSharing::Shared`], or equal shares (remainder spread over
/// the first workers) under [`CacheSharing::Partitioned`].
///
/// Exported so data-plane executors over a
/// [`StorageBackend`](crate::backend::StorageBackend) reproduce the
/// engine's hit/miss accounting by construction instead of by imitation.
pub fn build_caches(cfg: &EngineConfig, workers: usize) -> Vec<BufferCache> {
    match cfg.sharing {
        CacheSharing::Shared => vec![build_cache(cfg, cfg.cache_chunks)],
        CacheSharing::Partitioned => {
            // Equal shares, remainder spread over the first workers —
            // so a cache smaller than the worker count still caches
            // *somewhere* instead of rounding every share to zero.
            let w = workers.max(1);
            let (share, extra) = (cfg.cache_chunks / w, cfg.cache_chunks % w);
            (0..w)
                .map(|i| build_cache(cfg, share + usize::from(i < extra)))
                .collect()
        }
    }
}

/// Build one cache slice honouring FBF-specific configuration.
fn build_cache(cfg: &EngineConfig, capacity: usize) -> BufferCache {
    match cfg.policy {
        PolicyKind::Fbf => {
            BufferCache::from_policy(Box::new(FbfPolicy::with_config(capacity, cfg.fbf)))
        }
        PolicyKind::Vdf => BufferCache::from_policy(Box::new(match &cfg.victim_map {
            Some(map) => VdfPolicy::with_victim_map(capacity, map.clone()),
            None => VdfPolicy::new(capacity),
        })),
        _ => BufferCache::new(cfg.policy, capacity),
    }
}

/// Reusable per-run working memory of [`Engine::run`].
///
/// One run needs an event queue plus four per-worker vectors; at sweep
/// scale (thousands of points) re-allocating them for every point is pure
/// overhead. Keep one `EngineScratch` per sweep worker thread and pass it
/// to [`Engine::run_with_scratch`] — each run resets lengths and reuses
/// the backing storage. A scratch carries no state between runs (every
/// field is fully re-initialised), so reuse cannot change results; the
/// determinism tests in `tests/engine_equivalence.rs` pin this.
///
/// The queue defaults to [`CalendarQueue`]; instantiating with
/// [`oracle::HeapQueue`](crate::equeue::oracle::HeapQueue) swaps in the
/// original `BinaryHeap` for differential runs. Both pop in identical
/// `(time, kind, id)` order, so the choice cannot change reports — the
/// engine-level differential suite pins that, including under faults.
#[derive(Default)]
pub struct EngineScratch<Q: EventQueue = CalendarQueue> {
    queue: Q,
    next_op: Vec<usize>,
    gather_left: Vec<usize>,
    gather_floor: Vec<SimTime>,
    touched_disks: Vec<usize>,
}

impl EngineScratch {
    /// Fresh scratch with the default calendar queue. Differential suites
    /// wanting the heap oracle name the queue type explicitly:
    /// `EngineScratch::<HeapQueue>::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<Q: EventQueue> EngineScratch<Q> {
    /// Reset for a run over `workers` scripts, keeping allocations.
    fn reset(&mut self, workers: usize) {
        self.queue.clear();
        self.next_op.clear();
        self.next_op.resize(workers, 0);
        self.gather_left.clear();
        self.gather_left.resize(workers, 0);
        self.gather_floor.clear();
        self.gather_floor.resize(workers, SimTime::ZERO);
        self.touched_disks.clear();
    }
}

/// The simulation engine. Build once per run.
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Execute all worker scripts to completion and report, allocating
    /// fresh working memory. Sweeps should prefer
    /// [`run_with_scratch`](Engine::run_with_scratch).
    pub fn run(&self, scripts: &[WorkerScript]) -> RunReport {
        self.run_with_scratch(scripts, &mut EngineScratch::<CalendarQueue>::default())
    }

    /// [`run`](Engine::run) against caller-owned scratch memory, so the
    /// event queue and per-worker vectors are reused across runs instead of
    /// re-allocated per point. Generic over the queue so differential
    /// suites can run the calendar queue against the heap oracle.
    pub fn run_with_scratch<Q: EventQueue>(
        &self,
        scripts: &[WorkerScript],
        scratch: &mut EngineScratch<Q>,
    ) -> RunReport {
        let cfg = &self.config;
        let obs = cfg.obs && fbf_obs::enabled();
        let run_span = if obs {
            Some(fbf_obs::span("engine", "run"))
        } else {
            None
        };
        let workers = scripts.len();
        let faults = cfg.faults;
        let faulting = faults.is_active();
        // Stripes with a hard read failure this run: their remaining
        // script ops are abandoned (the controller re-plans them).
        let mut failed_stripes: FxHashSet<u32> = FxHashSet::default();
        // Chunks already rewritten to the spare area this run; their data
        // has left the (possibly faulty) original location.
        let mut repaired: FxHashSet<ChunkId> = FxHashSet::default();
        let mut disks: Vec<QueuedDisk> = (0..cfg.mapping.disks)
            .map(|i| {
                let mut scale_milli: u64 = match cfg.straggler {
                    Some((d, scale)) if d == i => (scale * 1000.0).round() as u64,
                    _ => 1000,
                };
                if let Some(s) = faults.straggler {
                    if s.disk as usize == i {
                        scale_milli = scale_milli * u64::from(s.scale_milli) / 1000;
                    }
                }
                QueuedDisk::with_scale_milli(cfg.disk_model, cfg.sched, scale_milli)
            })
            .collect();

        let mut caches: Vec<BufferCache> = build_caches(cfg, workers);

        // Two event kinds, ordered by (time, kind, id): disk completions
        // before worker steps at the same instant (a completion is what
        // unblocks its worker), ids breaking the remaining ties so runs
        // replay exactly.
        const EV_DISK_DONE: u8 = 0;
        const EV_WORKER: u8 = 1;
        scratch.reset(workers);
        let EngineScratch {
            queue,
            next_op,
            gather_left,
            gather_floor,
            touched_disks,
        } = scratch;
        for w in (0..workers).filter(|&w| !scripts[w].ops.is_empty()) {
            queue.push((SimTime::ZERO, EV_WORKER, w));
        }
        let mut report = RunReport {
            per_disk_class_reads: vec![[0u64; RequestClass::COUNT]; cfg.mapping.disks],
            ..Default::default()
        };

        while let Some((now, kind, id)) = queue.pop() {
            report.makespan = report.makespan.max(now);
            match kind {
                EV_DISK_DONE => {
                    let req = disks[id].complete();
                    let response = now - req.issued;
                    if req.write {
                        report.write_response.record(response);
                        report.write_completions.push(now);
                    } else {
                        report.read_response.record(response);
                        report.read_latency.record(response);
                        report.class_latency[scripts[req.tag].class.index()].record(response);
                    }
                    if gather_left[req.tag] > 0 {
                        // Part of a fan-out read: the worker resumes only
                        // when its last outstanding chunk arrives.
                        gather_left[req.tag] -= 1;
                        if gather_left[req.tag] == 0 {
                            queue.push((now.max(gather_floor[req.tag]), EV_WORKER, req.tag));
                        }
                    } else {
                        // Plain blocking request: resume immediately.
                        queue.push((now, EV_WORKER, req.tag));
                    }
                    // Keep the disk busy if more work is pending.
                    if let Some((_, done)) = disks[id].start_next(now) {
                        queue.push((done, EV_DISK_DONE, id));
                    }
                }
                _ => {
                    let w = id;
                    if next_op[w] >= scripts[w].ops.len() {
                        continue; // final wake-up after the last op
                    }
                    let op = scripts[w].ops[next_op[w]];
                    next_op[w] += 1;
                    match op {
                        Op::Read { chunk, priority } => {
                            if faulting && failed_stripes.contains(&chunk.stripe) {
                                // The stripe already failed hard this run:
                                // abandon the repair, let re-planning
                                // handle it.
                                report.faults.skipped_ops += 1;
                                queue.push((now, EV_WORKER, w));
                                continue;
                            }
                            let cache_idx = match cfg.sharing {
                                CacheSharing::Shared => 0,
                                CacheSharing::Partitioned => w,
                            };
                            let cache = &mut caches[cache_idx];
                            match cache.access(chunk) {
                                Lookup::Hit => {
                                    report.read_response.record(cfg.cache_hit_time);
                                    report.read_latency.record(cfg.cache_hit_time);
                                    report.class_latency[scripts[w].class.index()]
                                        .record(cfg.cache_hit_time);
                                    queue.push((now + cfg.cache_hit_time, EV_WORKER, w));
                                }
                                Lookup::Miss => {
                                    let disk = cfg.mapping.disk_of(chunk);
                                    let mut delay = SimTime::ZERO;
                                    if faulting && !repaired.contains(&chunk) {
                                        let failure = if faults.disk_dead(disk, now) {
                                            report.faults.dead_disk_reads += 1;
                                            Some(ReadFailure::DeadDisk)
                                        } else {
                                            match faults.draw(chunk) {
                                                FaultDraw::Ok => None,
                                                FaultDraw::Media => {
                                                    report.faults.media_errors += 1;
                                                    Some(ReadFailure::Media)
                                                }
                                                FaultDraw::Transient { stalls } => {
                                                    report.faults.transient_faults += 1;
                                                    let max = faults.retry.max_retries;
                                                    if stalls <= max {
                                                        // Retries succeed:
                                                        // the read just
                                                        // takes longer.
                                                        report.faults.retries += u64::from(stalls);
                                                        delay = faults.retry.delay_for(stalls);
                                                        None
                                                    } else {
                                                        report.faults.retries += u64::from(max);
                                                        report.faults.retries_exhausted += 1;
                                                        delay = faults.retry.delay_for(max);
                                                        Some(ReadFailure::RetriesExhausted)
                                                    }
                                                }
                                            }
                                        };
                                        if let Some(kind) = failure {
                                            // Hard failure: no frame is
                                            // reserved (no data will
                                            // arrive), the chunk becomes
                                            // an extra erasure.
                                            report.failed_reads.push(FailedRead {
                                                chunk,
                                                worker: w as u32,
                                                kind,
                                            });
                                            failed_stripes.insert(chunk.stripe);
                                            let wasted = if kind == ReadFailure::RetriesExhausted {
                                                delay
                                            } else {
                                                SimTime::ZERO
                                            };
                                            queue.push((
                                                now + wasted + faults.retry.detect,
                                                EV_WORKER,
                                                w,
                                            ));
                                            continue;
                                        }
                                    }
                                    // Reserve the frame at issue time (the
                                    // usual anti-thundering-herd design);
                                    // the worker blocks until DiskDone.
                                    cache.insert(chunk, priority);
                                    report.disk_reads += 1;
                                    report.per_disk_class_reads[disk][scripts[w].class.index()] +=
                                        1;
                                    let lba = cfg.mapping.lba_of(chunk);
                                    disks[disk].enqueue_after(
                                        w,
                                        lba,
                                        cfg.chunk_bytes,
                                        false,
                                        now,
                                        delay,
                                    );
                                    if let Some((_, done)) = disks[disk].start_next(now) {
                                        queue.push((done, EV_DISK_DONE, disk));
                                    }
                                }
                            }
                        }
                        Op::Compute { duration } => {
                            queue.push((now + duration, EV_WORKER, w));
                        }
                        Op::Gather { index } => {
                            let group = &scripts[w].gathers[index as usize];
                            if faulting {
                                // Pre-scan the fan-out for hard failures:
                                // classification is pure, so scanning
                                // before issuing changes nothing, and a
                                // doomed gather issues no I/O at all.
                                let mut stale = false;
                                let mut new_failure = false;
                                let mut wasted = SimTime::ZERO;
                                for &(chunk, _) in &group.chunks {
                                    if failed_stripes.contains(&chunk.stripe) {
                                        stale = true;
                                        continue;
                                    }
                                    if repaired.contains(&chunk) {
                                        continue;
                                    }
                                    let disk = cfg.mapping.disk_of(chunk);
                                    let kind = if faults.disk_dead(disk, now) {
                                        report.faults.dead_disk_reads += 1;
                                        Some(ReadFailure::DeadDisk)
                                    } else {
                                        match faults.draw(chunk) {
                                            FaultDraw::Media => {
                                                report.faults.media_errors += 1;
                                                Some(ReadFailure::Media)
                                            }
                                            FaultDraw::Transient { stalls }
                                                if stalls > faults.retry.max_retries =>
                                            {
                                                report.faults.transient_faults += 1;
                                                report.faults.retries +=
                                                    u64::from(faults.retry.max_retries);
                                                report.faults.retries_exhausted += 1;
                                                wasted = wasted.max(
                                                    faults
                                                        .retry
                                                        .delay_for(faults.retry.max_retries),
                                                );
                                                Some(ReadFailure::RetriesExhausted)
                                            }
                                            _ => None,
                                        }
                                    };
                                    if let Some(kind) = kind {
                                        report.failed_reads.push(FailedRead {
                                            chunk,
                                            worker: w as u32,
                                            kind,
                                        });
                                        failed_stripes.insert(chunk.stripe);
                                        new_failure = true;
                                    }
                                }
                                if new_failure || stale {
                                    report.faults.skipped_ops += 1;
                                    let wait = if new_failure {
                                        wasted + faults.retry.detect
                                    } else {
                                        SimTime::ZERO
                                    };
                                    queue.push((now + wait, EV_WORKER, w));
                                    continue;
                                }
                            }
                            let cache_idx = match cfg.sharing {
                                CacheSharing::Shared => 0,
                                CacheSharing::Partitioned => w,
                            };
                            let mut misses = 0usize;
                            let mut floor = now;
                            touched_disks.clear();
                            for &(chunk, priority) in &group.chunks {
                                let cache = &mut caches[cache_idx];
                                match cache.access(chunk) {
                                    Lookup::Hit => {
                                        report.read_response.record(cfg.cache_hit_time);
                                        report.read_latency.record(cfg.cache_hit_time);
                                        report.class_latency[scripts[w].class.index()]
                                            .record(cfg.cache_hit_time);
                                        floor = floor.max(now + cfg.cache_hit_time);
                                    }
                                    Lookup::Miss => {
                                        cache.insert(chunk, priority);
                                        report.disk_reads += 1;
                                        misses += 1;
                                        let disk = cfg.mapping.disk_of(chunk);
                                        report.per_disk_class_reads[disk]
                                            [scripts[w].class.index()] += 1;
                                        let lba = cfg.mapping.lba_of(chunk);
                                        let mut delay = SimTime::ZERO;
                                        if faulting && !repaired.contains(&chunk) {
                                            // Only survivable transients
                                            // remain after the pre-scan.
                                            if let FaultDraw::Transient { stalls } =
                                                faults.draw(chunk)
                                            {
                                                report.faults.transient_faults += 1;
                                                report.faults.retries += u64::from(stalls);
                                                delay = faults.retry.delay_for(stalls);
                                            }
                                        }
                                        disks[disk].enqueue_after(
                                            w,
                                            lba,
                                            cfg.chunk_bytes,
                                            false,
                                            now,
                                            delay,
                                        );
                                        touched_disks.push(disk);
                                    }
                                }
                            }
                            if misses == 0 {
                                // Served entirely from cache.
                                queue.push((floor, EV_WORKER, w));
                            } else {
                                gather_left[w] = misses;
                                gather_floor[w] = floor;
                                touched_disks.sort_unstable();
                                touched_disks.dedup();
                                for &disk in touched_disks.iter() {
                                    if let Some((_, done)) = disks[disk].start_next(now) {
                                        queue.push((done, EV_DISK_DONE, disk));
                                    }
                                }
                            }
                        }
                        Op::Write { chunk } => {
                            if faulting && failed_stripes.contains(&chunk.stripe) {
                                // Never write a spare chunk whose repair
                                // inputs could not be read.
                                report.faults.skipped_ops += 1;
                                queue.push((now, EV_WORKER, w));
                                continue;
                            }
                            if faulting {
                                // The chunk's data now lives in the spare
                                // area (redirected to a hot spare if the
                                // home disk is gone): later reads of it —
                                // chained schemes deliberately re-read
                                // repaired cells — are no longer subject
                                // to the *original* location's fault
                                // draws. Recorded at issue: the reader
                                // that follows in program order observes
                                // the write that precedes it.
                                repaired.insert(chunk);
                            }
                            report.disk_writes += 1;
                            let disk = cfg.mapping.disk_of(chunk);
                            let lba = cfg.mapping.spare_lba_of(chunk, cfg.data_stripes);
                            disks[disk].enqueue(w, lba, cfg.chunk_bytes, true, now);
                            if let Some((_, done)) = disks[disk].start_next(now) {
                                queue.push((done, EV_DISK_DONE, disk));
                            }
                        }
                    }
                }
            }
        }

        for cache in &caches {
            report.cache.merge(&cache.stats());
        }
        report.per_disk = disks.into_iter().map(|d| d.stats).collect();
        if obs {
            let run_id = fbf_obs::next_run_id();
            emit_run_events(cfg, &caches, &report, run_id);
            if let Some(span) = run_span {
                span.end_with(&[
                    ("run", fbf_obs::Value::U64(run_id)),
                    ("policy", fbf_obs::Value::Str(cfg.policy.name())),
                    ("workers", fbf_obs::Value::U64(workers as u64)),
                    (
                        "makespan_ms",
                        fbf_obs::Value::F64(report.makespan.as_millis_f64()),
                    ),
                ]);
            }
        }
        report
    }
}

/// Publish one run's counters as obs events: the aggregated cache totals,
/// FBF's final queue occupancy, and per-disk I/O counters. Called once per
/// run — never from the event loop — so observability cost is independent
/// of simulated work.
fn emit_run_events(cfg: &EngineConfig, caches: &[BufferCache], report: &RunReport, run_id: u64) {
    use fbf_obs::Value;
    let c = &report.cache;
    fbf_obs::counter(
        "engine",
        "cache",
        &[
            ("run", Value::U64(run_id)),
            ("policy", Value::Str(cfg.policy.name())),
            ("hits", Value::U64(c.hits)),
            ("misses", Value::U64(c.misses)),
            ("evictions", Value::U64(c.evictions)),
            ("inserts", Value::U64(c.inserts)),
            ("demotions", Value::U64(c.demotions)),
            ("prio1", Value::U64(c.prio_inserts[0])),
            ("prio2", Value::U64(c.prio_inserts[1])),
            ("prio3", Value::U64(c.prio_inserts[2])),
        ],
    );
    let mut queues = [0u64; 3];
    let mut have_queues = false;
    for cache in caches {
        if let Some(occ) = cache.queue_occupancy() {
            have_queues = true;
            for (total, q) in queues.iter_mut().zip(occ) {
                *total += q as u64;
            }
        }
    }
    if have_queues {
        fbf_obs::counter(
            "engine",
            "queues",
            &[
                ("run", Value::U64(run_id)),
                ("q1", Value::U64(queues[0])),
                ("q2", Value::U64(queues[1])),
                ("q3", Value::U64(queues[2])),
            ],
        );
    }
    if !report.faults.is_empty() {
        let f = &report.faults;
        fbf_obs::counter(
            "engine",
            "faults",
            &[
                ("run", Value::U64(run_id)),
                ("media", Value::U64(f.media_errors)),
                ("transient", Value::U64(f.transient_faults)),
                ("retries", Value::U64(f.retries)),
                ("exhausted", Value::U64(f.retries_exhausted)),
                ("dead_disk", Value::U64(f.dead_disk_reads)),
                ("skipped_ops", Value::U64(f.skipped_ops)),
                ("failed_reads", Value::U64(report.failed_reads.len() as u64)),
            ],
        );
    }
    for (idx, d) in report.per_disk.iter().enumerate() {
        fbf_obs::counter(
            "engine",
            "disk",
            &[
                ("run", Value::U64(run_id)),
                ("disk", Value::U64(idx as u64)),
                ("reads", Value::U64(d.reads)),
                ("writes", Value::U64(d.writes)),
                ("max_queue", Value::U64(d.max_queue)),
                ("busy_ms", Value::F64(d.busy.as_millis_f64())),
                ("queued_ms", Value::F64(d.queued.as_millis_f64())),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::Cell;

    fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
        ChunkId::new(stripe, Cell::new(r, c))
    }

    fn config(policy: PolicyKind, cache_chunks: usize, sharing: CacheSharing) -> EngineConfig {
        EngineConfig {
            sharing,
            ..EngineConfig::paper(policy, cache_chunks, ArrayMapping::new(4, 4, false), 100)
        }
    }

    fn read(stripe: u32, r: usize, c: usize) -> Op {
        Op::Read {
            chunk: chunk(stripe, r, c),
            priority: 1,
        }
    }

    #[test]
    fn single_worker_sequential_reads() {
        let cfg = config(PolicyKind::Lru, 8, CacheSharing::Shared);
        let script = WorkerScript {
            ops: vec![read(0, 0, 0), read(0, 1, 0), read(0, 0, 0)],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[script]);
        // Two misses (10 ms each) + one hit (0.5 ms).
        assert_eq!(report.disk_reads, 2);
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.makespan, SimTime::from_micros(20_500));
    }

    #[test]
    fn workers_contend_on_one_disk() {
        let cfg = config(PolicyKind::Lru, 0, CacheSharing::Shared);
        // Two workers each read a different chunk from disk 0.
        let s1 = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let s2 = WorkerScript {
            ops: vec![read(0, 1, 0)],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[s1, s2]);
        // Second read queues behind the first: makespan 20 ms, not 10.
        assert_eq!(report.makespan, SimTime::from_millis(20));
        assert_eq!(report.per_disk[0].reads, 2);
    }

    #[test]
    fn workers_parallel_on_distinct_disks() {
        let cfg = config(PolicyKind::Lru, 0, CacheSharing::Shared);
        let s1 = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let s2 = WorkerScript {
            ops: vec![read(0, 0, 1)],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[s1, s2]);
        assert_eq!(report.makespan, SimTime::from_millis(10));
    }

    #[test]
    fn compute_and_write_advance_time() {
        let cfg = config(PolicyKind::Lru, 4, CacheSharing::Shared);
        let script = WorkerScript {
            ops: vec![
                read(0, 0, 0),
                Op::Compute {
                    duration: SimTime::from_millis(1),
                },
                Op::Write {
                    chunk: chunk(0, 0, 0),
                },
            ],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[script]);
        assert_eq!(report.disk_writes, 1);
        // 10 ms read + 1 ms compute + 10 ms write.
        assert_eq!(report.makespan, SimTime::from_millis(21));
    }

    #[test]
    fn partitioned_cache_isolates_workers() {
        let cfg = config(PolicyKind::Lru, 2, CacheSharing::Partitioned);
        // Worker 0 warms chunk A; worker 1 then reads A — in partitioned
        // mode that is still a miss (separate cache slices).
        let s0 = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let s1 = WorkerScript {
            ops: vec![
                Op::Compute {
                    duration: SimTime::from_millis(50),
                },
                read(0, 0, 0),
            ],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[s0, s1]);
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.disk_reads, 2);
    }

    #[test]
    fn shared_cache_crosses_workers() {
        let cfg = config(PolicyKind::Lru, 2, CacheSharing::Shared);
        let s0 = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let s1 = WorkerScript {
            ops: vec![
                Op::Compute {
                    duration: SimTime::from_millis(50),
                },
                read(0, 0, 0),
            ],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[s0, s1]);
        assert_eq!(report.cache.hits, 1);
        assert_eq!(report.disk_reads, 1);
    }

    #[test]
    fn determinism() {
        let cfg = config(PolicyKind::Arc, 16, CacheSharing::Partitioned);
        let scripts: Vec<WorkerScript> = (0..4)
            .map(|w| WorkerScript {
                ops: (0..20)
                    .map(|i| read(i as u32 % 3, (i + w) % 4, i % 4))
                    .collect(),
                ..Default::default()
            })
            .collect();
        let r1 = Engine::new(cfg.clone()).run(&scripts);
        let r2 = Engine::new(cfg).run(&scripts);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.cache, r2.cache);
        assert_eq!(r1.disk_reads, r2.disk_reads);
    }

    #[test]
    fn empty_scripts_produce_empty_report() {
        let cfg = config(PolicyKind::Fifo, 4, CacheSharing::Shared);
        let report = Engine::new(cfg).run(&[WorkerScript::default()]);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report.disk_reads, 0);
    }

    #[test]
    fn response_time_separates_hits_and_misses() {
        let cfg = config(PolicyKind::Lru, 4, CacheSharing::Shared);
        let script = WorkerScript {
            ops: vec![read(0, 0, 0), read(0, 0, 0)],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[script]);
        // One 10 ms miss + one 0.5 ms hit → mean 5.25 ms.
        assert!((report.read_response.avg_millis() - 5.25).abs() < 1e-9);
        assert_eq!(report.read_response.max, SimTime::from_millis(10));
    }

    #[test]
    fn gather_fans_out_in_parallel() {
        // Three chunks on three distinct disks gathered at once: the
        // worker resumes after ONE disk service, not three.
        let cfg = config(PolicyKind::Lru, 0, CacheSharing::Shared);
        let mut script = WorkerScript::default();
        script.push_gather(vec![
            (chunk(0, 0, 0), 1),
            (chunk(0, 0, 1), 1),
            (chunk(0, 0, 2), 1),
        ]);
        let report = Engine::new(cfg).run(&[script]);
        assert_eq!(report.disk_reads, 3);
        assert_eq!(report.makespan, SimTime::from_millis(10));
    }

    #[test]
    fn gather_on_one_disk_serialises() {
        let cfg = config(PolicyKind::Lru, 0, CacheSharing::Shared);
        let mut script = WorkerScript::default();
        script.push_gather(vec![(chunk(0, 0, 0), 1), (chunk(0, 1, 0), 1)]);
        let report = Engine::new(cfg).run(&[script]);
        // Same disk: the two reads queue behind each other.
        assert_eq!(report.makespan, SimTime::from_millis(20));
    }

    #[test]
    fn gather_all_hits_costs_cache_time() {
        let cfg = config(PolicyKind::Lru, 8, CacheSharing::Shared);
        let mut script = WorkerScript {
            ops: vec![read(0, 0, 0), read(0, 0, 1)],
            ..Default::default()
        };
        script.push_gather(vec![(chunk(0, 0, 0), 1), (chunk(0, 0, 1), 1)]);
        let report = Engine::new(cfg).run(&[script]);
        // Two sequential misses (20 ms) then a fully-cached gather (0.5 ms).
        assert_eq!(report.makespan, SimTime::from_micros(20_500));
        assert_eq!(report.cache.hits, 2);
    }

    #[test]
    fn gather_after_ops_continues_script() {
        let cfg = config(PolicyKind::Lru, 8, CacheSharing::Shared);
        let mut script = WorkerScript::default();
        script.push_gather(vec![(chunk(0, 0, 0), 1)]);
        script.ops.push(Op::Compute {
            duration: SimTime::from_millis(5),
        });
        let report = Engine::new(cfg).run(&[script]);
        assert_eq!(report.makespan, SimTime::from_millis(15));
    }

    #[test]
    fn obs_run_events_reconcile_with_report() {
        // The only test in this binary touching the global subscriber, so
        // no serialisation gate is needed.
        let sub = std::sync::Arc::new(fbf_obs::CountingSubscriber::default());
        fbf_obs::install(sub.clone());
        let mut cfg = config(PolicyKind::Fbf, 4, CacheSharing::Shared);
        cfg.obs = true;
        let script = WorkerScript {
            ops: vec![
                Op::Read {
                    chunk: chunk(0, 0, 0),
                    priority: 3,
                },
                Op::Read {
                    chunk: chunk(0, 0, 0),
                    priority: 3,
                },
                read(0, 1, 0),
            ],
            ..Default::default()
        };
        let report = Engine::new(cfg).run(&[script]);
        fbf_obs::uninstall();
        assert_eq!(sub.total("engine/cache/hits"), report.cache.hits);
        assert_eq!(sub.total("engine/cache/misses"), report.cache.misses);
        assert_eq!(sub.total("engine/cache/demotions"), report.cache.demotions);
        assert_eq!(report.cache.demotions, 1, "the repeat read demotes Q3→Q2");
        let disk_reads: u64 = sub.total("engine/disk/reads");
        assert_eq!(disk_reads, report.disk_reads);
        assert!(
            sub.total("engine/queues/q2") > 0,
            "demoted chunk sits in Q2"
        );
    }

    #[test]
    fn obs_disabled_config_emits_nothing_even_with_subscriber() {
        let sub = std::sync::Arc::new(fbf_obs::CountingSubscriber::default());
        let cfg = config(PolicyKind::Fbf, 4, CacheSharing::Shared);
        assert!(!cfg.obs, "paper config defaults to obs off");
        // No install: enabled() is false, and cfg.obs is false too.
        let script = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        Engine::new(cfg).run(&[script]);
        assert_eq!(sub.events(), 0);
    }

    fn fault_config(plan: FaultPlan) -> EngineConfig {
        EngineConfig {
            faults: plan,
            ..config(PolicyKind::Lru, 8, CacheSharing::Shared)
        }
    }

    #[test]
    fn media_error_abandons_the_stripe() {
        let plan = FaultPlan {
            media_per_mille: 1000, // every read is unreadable
            ..FaultPlan::none()
        };
        let script = WorkerScript {
            ops: vec![
                read(0, 0, 0),
                Op::Compute {
                    duration: SimTime::from_millis(1),
                },
                read(0, 1, 0),
                Op::Write {
                    chunk: chunk(0, 2, 0),
                },
            ],
            ..Default::default()
        };
        let report = Engine::new(fault_config(plan)).run(&[script]);
        assert_eq!(report.faults.media_errors, 1, "first read fails hard");
        assert_eq!(report.failed_reads.len(), 1);
        assert_eq!(report.failed_reads[0].kind, ReadFailure::Media);
        assert_eq!(report.disk_reads, 0, "no I/O issued for the doomed read");
        assert_eq!(
            report.disk_writes, 0,
            "spare write of a failed stripe skipped"
        );
        assert_eq!(
            report.faults.skipped_ops, 2,
            "second read and the write are abandoned"
        );
        // Detection (2 ms) + compute (1 ms); skipped ops are free.
        assert_eq!(report.makespan, SimTime::from_millis(3));
    }

    #[test]
    fn transient_faults_delay_but_recover() {
        let plan = FaultPlan {
            transient_per_mille: 1000,
            transient_failures_max: 1, // always exactly one stall
            ..FaultPlan::none()
        };
        let script = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let report = Engine::new(fault_config(plan)).run(&[script]);
        assert_eq!(report.faults.transient_faults, 1);
        assert_eq!(report.faults.retries, 1);
        assert!(report.failed_reads.is_empty(), "the retry succeeded");
        assert_eq!(report.disk_reads, 1);
        // 10 ms service + one stall (10 ms timeout + 5 ms backoff).
        assert_eq!(report.makespan, SimTime::from_millis(25));
    }

    #[test]
    fn dead_disk_fails_only_its_own_reads() {
        let plan = FaultPlan {
            disk_kill: Some(crate::fault::DiskKill {
                disk: 0,
                at: SimTime::ZERO,
            }),
            ..FaultPlan::none()
        };
        // Stripe 0 reads disk 0 (dead); stripe 1's read lands on disk 1.
        let s0 = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let s1 = WorkerScript {
            ops: vec![read(1, 0, 1)],
            ..Default::default()
        };
        let report = Engine::new(fault_config(plan)).run(&[s0, s1]);
        assert_eq!(report.faults.dead_disk_reads, 1);
        assert_eq!(report.failed_reads.len(), 1);
        assert_eq!(report.failed_reads[0].kind, ReadFailure::DeadDisk);
        assert_eq!(report.failed_reads[0].chunk.stripe, 0);
        assert_eq!(report.disk_reads, 1, "the healthy disk still serves");
    }

    #[test]
    fn cached_chunks_survive_a_disk_kill() {
        let plan = FaultPlan {
            disk_kill: Some(crate::fault::DiskKill {
                disk: 0,
                at: SimTime::from_millis(5),
            }),
            ..FaultPlan::none()
        };
        // First read issues before the kill; the repeat is a cache hit
        // even though the disk is gone by then.
        let script = WorkerScript {
            ops: vec![read(0, 0, 0), read(0, 0, 0)],
            ..Default::default()
        };
        let report = Engine::new(fault_config(plan)).run(&[script]);
        assert!(report.failed_reads.is_empty());
        assert_eq!(report.cache.hits, 1);
    }

    #[test]
    fn gather_with_a_dead_chunk_issues_nothing() {
        let plan = FaultPlan {
            disk_kill: Some(crate::fault::DiskKill {
                disk: 0,
                at: SimTime::ZERO,
            }),
            ..FaultPlan::none()
        };
        let mut script = WorkerScript::default();
        script.push_gather(vec![(chunk(0, 0, 0), 1), (chunk(0, 0, 1), 1)]);
        let report = Engine::new(fault_config(plan)).run(&[script]);
        assert_eq!(report.disk_reads, 0, "doomed gather aborts before any I/O");
        assert_eq!(report.failed_reads.len(), 1);
        assert_eq!(report.faults.skipped_ops, 1);
    }

    #[test]
    fn fault_straggler_scales_service() {
        let plan = FaultPlan {
            straggler: Some(crate::fault::SlowDisk {
                disk: 0,
                scale_milli: 2000,
            }),
            ..FaultPlan::none()
        };
        let script = WorkerScript {
            ops: vec![read(0, 0, 0)],
            ..Default::default()
        };
        let report = Engine::new(fault_config(plan)).run(&[script]);
        assert_eq!(report.makespan, SimTime::from_millis(20));
        assert!(report.failed_reads.is_empty());
    }

    #[test]
    fn faulted_runs_replay_exactly() {
        let plan = FaultPlan {
            seed: 7,
            media_per_mille: 60,
            transient_per_mille: 250,
            transient_failures_max: 5,
            disk_kill: Some(crate::fault::DiskKill {
                disk: 2,
                at: SimTime::from_millis(15),
            }),
            ..FaultPlan::none()
        };
        let scripts: Vec<WorkerScript> = (0..4)
            .map(|w| WorkerScript {
                ops: (0..20)
                    .map(|i| read((i % 6) as u32, (i + w) % 4, i % 4))
                    .collect(),
                ..Default::default()
            })
            .collect();
        let cfg = fault_config(plan);
        let r1 = Engine::new(cfg.clone()).run(&scripts);
        let r2 = Engine::new(cfg).run(&scripts);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.faults, r2.faults);
        assert_eq!(r1.failed_reads, r2.failed_reads);
        assert_eq!(r1.disk_reads, r2.disk_reads);
        assert!(r1.faults.media_errors + r1.faults.transient_faults > 0);
    }

    #[test]
    fn inactive_plan_changes_nothing() {
        let scripts: Vec<WorkerScript> = (0..3)
            .map(|w| WorkerScript {
                ops: (0..12)
                    .map(|i| read(i as u32 % 3, (i + w) % 4, i % 4))
                    .collect(),
                ..Default::default()
            })
            .collect();
        let base = Engine::new(config(PolicyKind::Lru, 8, CacheSharing::Shared)).run(&scripts);
        let faulted = Engine::new(fault_config(FaultPlan::none())).run(&scripts);
        assert_eq!(base.makespan, faulted.makespan);
        assert_eq!(base.disk_reads, faulted.disk_reads);
        assert_eq!(base.cache, faulted.cache);
        assert!(faulted.faults.is_empty());
    }

    #[test]
    fn script_read_count() {
        let s = WorkerScript {
            ops: vec![
                read(0, 0, 0),
                Op::Compute {
                    duration: SimTime::ZERO,
                },
                read(0, 1, 1),
            ],
            ..Default::default()
        };
        assert_eq!(s.reads(), 2);
    }
}
