//! The RAID controller's buffer cache.
//!
//! Wraps a [`ReplacementPolicy`] with hit/miss accounting and the paper's
//! access-time constants. The cache stores chunk *identities*; the policy
//! decides residency, and the engine charges 0.5 ms for a hit or a full
//! disk round-trip (plus insert/evict bookkeeping) for a miss.

use fbf_cache::{CacheStats, InsertOutcome, Key, PolicyKind, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lookup {
    /// Chunk resident; served at buffer-cache speed.
    Hit,
    /// Chunk absent; must be fetched from disk then inserted.
    Miss,
}

/// A buffer cache: replacement policy + statistics.
pub struct BufferCache {
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl BufferCache {
    /// Build a cache of `capacity` chunks using `kind`'s policy.
    pub fn new(kind: PolicyKind, capacity: usize) -> Self {
        BufferCache {
            policy: kind.build(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Build around an existing policy instance (used for configured FBF
    /// variants in ablations).
    pub fn from_policy(policy: Box<dyn ReplacementPolicy>) -> Self {
        BufferCache {
            policy,
            stats: CacheStats::default(),
        }
    }

    /// Look `key` up, updating policy state and stats.
    pub fn access(&mut self, key: Key) -> Lookup {
        if self.policy.on_access(key) {
            self.stats.record_hit();
            Lookup::Hit
        } else {
            self.stats.record_miss();
            Lookup::Miss
        }
    }

    /// Insert `key` after a miss, with its FBF priority (ignored by other
    /// policies). Returns the evicted chunk, if any. Duplicate inserts and
    /// zero-capacity rejections ([`InsertOutcome`]) evict nothing and are
    /// not counted as inserts.
    pub fn insert(&mut self, key: Key, priority: u8) -> Option<Key> {
        match self.policy.on_insert(key, priority) {
            InsertOutcome::Inserted { evicted } => {
                self.stats.record_insert_prio(priority, evicted.is_some());
                evicted
            }
            InsertOutcome::AlreadyResident | InsertOutcome::Rejected => None,
        }
    }

    /// Residency check without side effects.
    pub fn contains(&self, key: &Key) -> bool {
        self.policy.contains(key)
    }

    /// Accumulated statistics. Demotions live inside the policy (the
    /// hot-path `on_access` signature stays counter-free); they are folded
    /// into the snapshot here so callers see one uniform struct.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.stats;
        stats.demotions = self.policy.demotions();
        stats
    }

    /// Current `[Queue1, Queue2, Queue3]` occupancy for priority-queue
    /// policies (FBF); `None` otherwise.
    pub fn queue_occupancy(&self) -> Option<[usize; 3]> {
        self.policy.queue_occupancy()
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.policy.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.policy.is_empty()
    }

    /// Capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.policy.capacity()
    }

    /// Which replacement policy this cache runs. Display goes through
    /// [`PolicyKind`]'s `Display`/`name()` — the one place names live.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Drop residents and stats (fresh campaign).
    pub fn reset(&mut self) {
        self.policy.clear();
        self.stats = CacheStats::default();
    }
}

impl std::fmt::Debug for BufferCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferCache")
            .field("policy", &self.policy.kind())
            .field("capacity", &self.policy.capacity())
            .field("len", &self.policy.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_cache::key;

    #[test]
    fn access_miss_then_hit() {
        let mut c = BufferCache::new(PolicyKind::Lru, 4);
        let k = key(0, 0, 0);
        assert_eq!(c.access(k), Lookup::Miss);
        c.insert(k, 1);
        assert_eq!(c.access(k), Lookup::Hit);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn eviction_recorded() {
        let mut c = BufferCache::new(PolicyKind::Fifo, 1);
        c.access(key(0, 0, 0));
        c.insert(key(0, 0, 0), 1);
        c.access(key(0, 0, 1));
        let evicted = c.insert(key(0, 0, 1), 1);
        assert_eq!(evicted, Some(key(0, 0, 0)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut c = BufferCache::new(PolicyKind::Fbf, 4);
        c.access(key(0, 0, 0));
        c.insert(key(0, 0, 0), 3);
        c.reset();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.access(key(0, 0, 0)), Lookup::Miss);
    }

    #[test]
    fn demotions_and_priority_split_surface_in_stats() {
        let mut c = BufferCache::new(PolicyKind::Fbf, 8);
        let k = key(0, 0, 0);
        c.access(k);
        c.insert(k, 3);
        c.access(k); // Q3 → Q2 demotion
        c.access(k); // Q2 → Q1 demotion
        c.access(key(0, 0, 1));
        c.insert(key(0, 0, 1), 1);
        let s = c.stats();
        assert_eq!(s.demotions, 2);
        assert_eq!(s.prio_inserts, [1, 0, 1]);
        assert_eq!(s.prio_inserts.iter().sum::<u64>(), s.inserts);
        assert_eq!(c.queue_occupancy(), Some([2, 0, 0]));
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn policy_kind_propagates() {
        let c = BufferCache::new(PolicyKind::Arc, 2);
        assert_eq!(c.policy_kind(), PolicyKind::Arc);
        assert_eq!(c.policy_kind().name(), "ARC");
    }
}
