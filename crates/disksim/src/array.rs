//! Chunk-to-disk/LBA mapping for a striped array.
//!
//! A stripe's columns map onto physical disks either *fixed* (column `c`
//! always lives on disk `c` — TIP, Triple-STAR, STAR dedicate parity
//! columns to parity disks) or *rotated* (HDD1: the mapping shifts by one
//! disk per stripe, RAID-5 style, spreading parity traffic).

use fbf_codes::ChunkId;
use serde::{Deserialize, Serialize};

/// Maps chunks to (disk, LBA) addresses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArrayMapping {
    /// Number of disks (= stripe columns).
    pub disks: usize,
    /// Rows per stripe (`p - 1`).
    pub rows: usize,
    /// HDD1-style per-stripe rotation of the column→disk mapping.
    pub rotated: bool,
}

impl ArrayMapping {
    /// Mapping for an `n`-disk array with `rows` chunks per stripe column.
    pub fn new(disks: usize, rows: usize, rotated: bool) -> Self {
        assert!(disks > 0 && rows > 0);
        ArrayMapping {
            disks,
            rows,
            rotated,
        }
    }

    /// The physical disk holding `chunk`.
    pub fn disk_of(&self, chunk: ChunkId) -> usize {
        let col = chunk.cell.c();
        debug_assert!(
            col < self.disks,
            "column {col} outside {}-disk array",
            self.disks
        );
        if self.rotated {
            (col + chunk.stripe as usize) % self.disks
        } else {
            col
        }
    }

    /// The chunk-granular LBA of `chunk` on its disk: stripes are laid out
    /// consecutively, each contributing `rows` chunks per disk.
    pub fn lba_of(&self, chunk: ChunkId) -> u64 {
        chunk.stripe as u64 * self.rows as u64 + chunk.cell.r() as u64
    }

    /// LBA of the spare area where a recovered chunk is rewritten: a region
    /// past the data zone on the same disk (the paper repairs sector/chunk
    /// errors "by writing recovered data to spare sectors or blocks instead
    /// of replacing the whole disk", §II-C).
    pub fn spare_lba_of(&self, chunk: ChunkId, data_stripes: u64) -> u64 {
        data_stripes * self.rows as u64 + self.lba_of(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::Cell;

    fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
        ChunkId::new(stripe, Cell::new(r, c))
    }

    #[test]
    fn fixed_mapping_pins_columns() {
        let m = ArrayMapping::new(8, 6, false);
        assert_eq!(m.disk_of(chunk(0, 0, 3)), 3);
        assert_eq!(m.disk_of(chunk(99, 5, 3)), 3);
    }

    #[test]
    fn rotated_mapping_shifts_per_stripe() {
        let m = ArrayMapping::new(8, 6, true);
        assert_eq!(m.disk_of(chunk(0, 0, 3)), 3);
        assert_eq!(m.disk_of(chunk(1, 0, 3)), 4);
        assert_eq!(m.disk_of(chunk(5, 0, 3)), 0);
    }

    #[test]
    fn rotation_spreads_a_column_over_all_disks() {
        let m = ArrayMapping::new(6, 4, true);
        let disks: std::collections::HashSet<usize> =
            (0..6u32).map(|s| m.disk_of(chunk(s, 0, 5))).collect();
        assert_eq!(disks.len(), 6, "parity column must visit every disk");
    }

    #[test]
    fn lba_is_stripe_major() {
        let m = ArrayMapping::new(8, 6, false);
        assert_eq!(m.lba_of(chunk(0, 0, 2)), 0);
        assert_eq!(m.lba_of(chunk(0, 5, 2)), 5);
        assert_eq!(m.lba_of(chunk(2, 1, 2)), 13);
    }

    #[test]
    fn spare_lba_is_past_data_zone() {
        let m = ArrayMapping::new(8, 6, false);
        let data_stripes = 100;
        let s = m.spare_lba_of(chunk(3, 2, 0), data_stripes);
        assert_eq!(s, 600 + 20);
        assert!(s >= data_stripes * 6);
    }
}
