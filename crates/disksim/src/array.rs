//! Chunk-to-disk/LBA mapping for a striped array.
//!
//! A stripe's columns map onto physical disks either *fixed* (column `c`
//! always lives on disk `c` — TIP, Triple-STAR, STAR dedicate parity
//! columns to parity disks), *rotated* (HDD1: the mapping shifts by one
//! disk per stripe, RAID-5 style, spreading parity traffic), or
//! *declustered* ([`Placement::Declustered`]: a per-stripe affine
//! permutation from [`crate::declust`] spreads each stripe's columns over
//! an array with many more disks than columns, so rebuild reads after a
//! disk failure touch every survivor instead of hammering `k - 1` disks).

use crate::declust::{clustered_disk, declustered_disk, DeclusteredLayout, Placement};
use fbf_codes::ChunkId;
use serde::{Deserialize, Serialize};

/// Maps chunks to (disk, LBA) addresses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArrayMapping {
    /// Number of disks (>= stripe columns; equal for clustered arrays).
    pub disks: usize,
    /// Rows per stripe (`p - 1`).
    pub rows: usize,
    /// Stripe columns. Placement routes columns `0..cols` onto `disks`
    /// physical disks; clustered arrays have `cols == disks`.
    pub cols: usize,
    /// Column→disk placement rule.
    pub placement: Placement,
}

impl ArrayMapping {
    /// Mapping for an `n`-disk clustered array with `rows` chunks per
    /// stripe column (the original constructor: one disk per column).
    pub fn new(disks: usize, rows: usize, rotated: bool) -> Self {
        let placement = if rotated {
            Placement::Rotated
        } else {
            Placement::Fixed
        };
        Self::with_placement(disks, rows, disks, placement)
    }

    /// Mapping for `cols`-column stripes placed on `disks >= cols`
    /// physical disks under an explicit placement rule.
    pub fn with_placement(disks: usize, rows: usize, cols: usize, placement: Placement) -> Self {
        assert!(disks > 0 && rows > 0 && cols > 0);
        assert!(cols <= disks, "{cols} stripe columns need <= {disks} disks");
        ArrayMapping {
            disks,
            rows,
            cols,
            placement,
        }
    }

    /// D3-declustered mapping of `cols`-column stripes over `disks` disks.
    pub fn declustered(disks: usize, rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_placement(disks, rows, cols, Placement::Declustered { seed })
    }

    /// The physical disk holding `chunk`.
    pub fn disk_of(&self, chunk: ChunkId) -> usize {
        self.disk_of_col(chunk.stripe, chunk.cell.c())
    }

    /// Column-level placement (the [`DeclusteredLayout`] view of this
    /// mapping, without needing a `ChunkId`).
    pub fn disk_of_col(&self, stripe: u32, col: usize) -> usize {
        debug_assert!(
            col < self.cols,
            "column {col} outside {}-column stripe",
            self.cols
        );
        match self.placement {
            Placement::Fixed => clustered_disk(self.disks, false, stripe, col),
            Placement::Rotated => clustered_disk(self.disks, true, stripe, col),
            Placement::Declustered { seed } => declustered_disk(self.disks, seed, stripe, col),
        }
    }

    /// The chunk-granular LBA of `chunk` on its disk: stripes are laid out
    /// consecutively, each contributing up to `rows` chunks per disk. Any
    /// per-stripe-permutation placement puts at most one column of a
    /// stripe on a disk, so (disk, LBA) never collides across chunks.
    pub fn lba_of(&self, chunk: ChunkId) -> u64 {
        chunk.stripe as u64 * self.rows as u64 + chunk.cell.r() as u64
    }

    /// LBA of the spare area where a recovered chunk is rewritten: a region
    /// past the data zone on the same disk (the paper repairs sector/chunk
    /// errors "by writing recovered data to spare sectors or blocks instead
    /// of replacing the whole disk", §II-C).
    pub fn spare_lba_of(&self, chunk: ChunkId, data_stripes: u64) -> u64 {
        data_stripes * self.rows as u64 + self.lba_of(chunk)
    }
}

impl DeclusteredLayout for ArrayMapping {
    fn disks(&self) -> usize {
        self.disks
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn disk_of(&self, stripe: u32, col: usize) -> usize {
        self.disk_of_col(stripe, col)
    }

    fn name(&self) -> &'static str {
        self.placement.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_codes::Cell;

    fn chunk(stripe: u32, r: usize, c: usize) -> ChunkId {
        ChunkId::new(stripe, Cell::new(r, c))
    }

    #[test]
    fn fixed_mapping_pins_columns() {
        let m = ArrayMapping::new(8, 6, false);
        assert_eq!(m.disk_of(chunk(0, 0, 3)), 3);
        assert_eq!(m.disk_of(chunk(99, 5, 3)), 3);
    }

    #[test]
    fn rotated_mapping_shifts_per_stripe() {
        let m = ArrayMapping::new(8, 6, true);
        assert_eq!(m.disk_of(chunk(0, 0, 3)), 3);
        assert_eq!(m.disk_of(chunk(1, 0, 3)), 4);
        assert_eq!(m.disk_of(chunk(5, 0, 3)), 0);
    }

    #[test]
    fn rotation_spreads_a_column_over_all_disks() {
        let m = ArrayMapping::new(6, 4, true);
        let disks: std::collections::HashSet<usize> =
            (0..6u32).map(|s| m.disk_of(chunk(s, 0, 5))).collect();
        assert_eq!(disks.len(), 6, "parity column must visit every disk");
    }

    #[test]
    fn lba_is_stripe_major() {
        let m = ArrayMapping::new(8, 6, false);
        assert_eq!(m.lba_of(chunk(0, 0, 2)), 0);
        assert_eq!(m.lba_of(chunk(0, 5, 2)), 5);
        assert_eq!(m.lba_of(chunk(2, 1, 2)), 13);
    }

    #[test]
    fn spare_lba_is_past_data_zone() {
        let m = ArrayMapping::new(8, 6, false);
        let data_stripes = 100;
        let s = m.spare_lba_of(chunk(3, 2, 0), data_stripes);
        assert_eq!(s, 600 + 20);
        assert!(s >= data_stripes * 6);
    }

    #[test]
    fn declustered_mapping_is_injective_per_stripe() {
        let m = ArrayMapping::declustered(128, 4, 7, 11);
        for s in 0..256u32 {
            let disks: std::collections::HashSet<usize> =
                (0..7).map(|c| m.disk_of_col(s, c)).collect();
            assert_eq!(disks.len(), 7, "stripe {s} reuses a disk");
            assert!(disks.iter().all(|&d| d < 128));
        }
    }

    #[test]
    fn declustered_disk_lba_addresses_never_collide() {
        // Across many stripes, (disk, lba) uniquely identifies a chunk
        // even though the placement permutes columns per stripe.
        let m = ArrayMapping::declustered(32, 4, 7, 3);
        let mut seen = std::collections::HashSet::new();
        for s in 0..64u32 {
            for r in 0..4 {
                for c in 0..7 {
                    let ch = chunk(s, r, c);
                    assert!(
                        seen.insert((m.disk_of(ch), m.lba_of(ch))),
                        "chunk {ch:?} collides on (disk, lba)"
                    );
                }
            }
        }
    }

    #[test]
    fn legacy_constructor_keeps_cols_equal_to_disks() {
        let m = ArrayMapping::new(8, 6, false);
        assert_eq!(m.cols, 8);
        assert_eq!(m.placement, Placement::Fixed);
        let r = ArrayMapping::new(8, 6, true);
        assert_eq!(r.placement, Placement::Rotated);
    }
}
