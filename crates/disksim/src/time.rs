//! Virtual time.
//!
//! [`SimTime`] is a nanosecond tick count. Nanoseconds keep every quantity
//! the paper uses (0.5 ms cache hits, 10 ms disk accesses, sub-ms FBF
//! overhead) exactly representable in integers, so simulations are
//! deterministic and replay-stable — no floating-point clock drift.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From fractional milliseconds (rounds to the nearest nanosecond).
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "negative or non-finite time");
        SimTime((ms * 1e6).round() as u64)
    }

    /// From whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction (spans never go negative).
    #[inline]
    pub fn saturating_sub(&self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(10).as_nanos(), 10_000_000);
        assert_eq!(SimTime::from_micros(500).as_nanos(), 500_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_millis_f64(0.5).as_nanos(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!(a + b, SimTime::from_millis(4));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimTime::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_ms_rejected() {
        SimTime::from_millis_f64(-1.0);
    }
}
