//! Declustered data layouts: spreading stripe columns over a large array.
//!
//! A clustered array maps stripe column `c` to disk `c` (optionally
//! rotated RAID-5 style), so an `n`-disk array with `k`-column stripes
//! concentrates every rebuild read on the `k - 1` surviving columns no
//! matter how many disks the array has. Parity declustering (Muntz &
//! Lui; t-designs per Dau et al.; D3 per Xu et al.) instead gives every
//! stripe its own small subset of the `n` disks, chosen so rebuild reads
//! after a disk failure spread near-uniformly over *all* survivors.
//!
//! [`DeclusteredLayout`] is the placement contract the engine's
//! [`ArrayMapping`](crate::array::ArrayMapping) and the rebuild scheduler
//! program against. Two constructions are provided:
//!
//! * [`ClusteredLayout`] — the original column-pinned (or rotated)
//!   placement, for baselines and small arrays;
//! * [`D3Layout`] — a deterministic affine construction in the spirit of
//!   D3: stripe `s` maps column `c` to disk `(a_s + c·b_s) mod n` with
//!   `b_s` coprime to `n`, both derived from a splitmix64 draw on
//!   `(seed, s)`. Affine maps with invertible slope are permutations of
//!   `Z_n`, so the placement invariant below holds by construction.
//!
//! ## Placement invariant
//!
//! For every stripe, the layout restricted to that stripe's columns is
//! **injective**: no two chunks of one stripe share a disk (requires
//! `cols ≤ disks`). Combined with the stripe-major LBA scheme
//! (`lba = stripe·rows + r`) this makes chunk → `(disk, lba)` a bijection
//! onto its image — every chunk has exactly one home and no two chunks
//! collide. `tests/declust_props.rs` checks this differentially over
//! randomized geometries for every layout here.

use serde::{Deserialize, Serialize};

/// A stripe-column → physical-disk placement over an `n`-disk array.
///
/// Implementations must be pure functions of `(stripe, col)` (plus their
/// own immutable parameters): the engine, the rebuild scheduler's
/// admission projections, and the differential tests all evaluate the
/// same placement independently and must agree.
pub trait DeclusteredLayout {
    /// Physical disks in the array.
    fn disks(&self) -> usize;

    /// Columns per stripe (`cols() <= disks()`).
    fn cols(&self) -> usize;

    /// The disk holding column `col` of `stripe`. Must be `< disks()`
    /// and injective in `col` for any fixed `stripe`.
    fn disk_of(&self, stripe: u32, col: usize) -> usize;

    /// Short label for reports.
    fn name(&self) -> &'static str;

    /// The disks of one stripe, in column order.
    fn stripe_disks(&self, stripe: u32) -> Vec<usize> {
        (0..self.cols()).map(|c| self.disk_of(stripe, c)).collect()
    }
}

/// The original clustered placement: column `c` on disk `c`, or shifted
/// by one disk per stripe when `rotated` (HDD1 / RAID-5 parity rotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusteredLayout {
    /// Physical disks.
    pub disks: usize,
    /// Stripe columns (`<= disks`).
    pub cols: usize,
    /// Shift the column→disk map by one per stripe.
    pub rotated: bool,
}

impl ClusteredLayout {
    /// Clustered placement of `cols`-column stripes on `disks` disks.
    pub fn new(disks: usize, cols: usize, rotated: bool) -> Self {
        assert!(disks > 0 && cols > 0 && cols <= disks);
        ClusteredLayout {
            disks,
            cols,
            rotated,
        }
    }
}

impl DeclusteredLayout for ClusteredLayout {
    fn disks(&self) -> usize {
        self.disks
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn disk_of(&self, stripe: u32, col: usize) -> usize {
        clustered_disk(self.disks, self.rotated, stripe, col)
    }

    fn name(&self) -> &'static str {
        if self.rotated {
            "rotated"
        } else {
            "clustered"
        }
    }
}

/// Deterministic affine declustering: stripe `s` places column `c` on
/// disk `(a_s + c·b_s) mod n`, with `b_s` coprime to `n` so the map is a
/// permutation of `Z_n` (the D3 paper's "deterministic data distribution"
/// shape, seeded instead of table-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct D3Layout {
    /// Physical disks.
    pub disks: usize,
    /// Stripe columns (`<= disks`).
    pub cols: usize,
    /// Placement seed: two arrays with equal seeds place identically.
    pub seed: u64,
}

impl D3Layout {
    /// D3 placement of `cols`-column stripes on `disks` disks.
    pub fn new(disks: usize, cols: usize, seed: u64) -> Self {
        assert!(disks > 0 && cols > 0 && cols <= disks);
        D3Layout { disks, cols, seed }
    }
}

impl DeclusteredLayout for D3Layout {
    fn disks(&self) -> usize {
        self.disks
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn disk_of(&self, stripe: u32, col: usize) -> usize {
        declustered_disk(self.disks, self.seed, stripe, col)
    }

    fn name(&self) -> &'static str {
        "declustered"
    }
}

/// Clustered column→disk map as a pure function (shared by
/// [`ClusteredLayout`] and [`ArrayMapping`](crate::array::ArrayMapping)).
#[inline]
pub fn clustered_disk(disks: usize, rotated: bool, stripe: u32, col: usize) -> usize {
    if rotated {
        (col + stripe as usize) % disks
    } else {
        col
    }
}

/// D3 affine column→disk map as a pure function (shared by [`D3Layout`]
/// and [`ArrayMapping`](crate::array::ArrayMapping)).
///
/// `a_s` and `b_s` come from one splitmix64 draw on `seed ^ stripe`;
/// `b_s` is stepped to the next unit of `Z_n`, so `c → (a_s + c·b_s)` is
/// injective for `c < n`.
#[inline]
pub fn declustered_disk(disks: usize, seed: u64, stripe: u32, col: usize) -> usize {
    let n = disks as u64;
    if n == 1 {
        return 0;
    }
    let h = splitmix64(seed ^ (u64::from(stripe).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let a = h % n;
    let b = coprime_slope(h >> 32, n);
    ((a + (col as u64 % n) * b) % n) as usize
}

/// The first unit of `Z_n` at or after `1 + (draw mod (n-1))`, stepping
/// cyclically. Terminates because `gcd(1, n) == 1` guarantees at least
/// one unit in `1..n`.
#[inline]
fn coprime_slope(draw: u64, n: u64) -> u64 {
    let mut b = 1 + draw % (n - 1);
    while gcd(b, n) != 1 {
        b = if b + 1 < n { b + 1 } else { 1 };
    }
    b
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Sebastiano Vigna's splitmix64 — the same generator the fault plan
/// uses for per-chunk draws, so placement is stable across platforms.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Serializable placement selector carried by
/// [`ArrayMapping`](crate::array::ArrayMapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Column `c` on disk `c`.
    Fixed,
    /// Column→disk map shifted by one disk per stripe (HDD1).
    Rotated,
    /// D3 affine declustering under `seed`.
    Declustered {
        /// Placement seed.
        seed: u64,
    },
}

impl Placement {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Fixed => "clustered",
            Placement::Rotated => "rotated",
            Placement::Declustered { .. } => "declustered",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn affine_map_is_injective_per_stripe() {
        let l = D3Layout::new(101, 13, 42);
        for stripe in 0..512u32 {
            let disks: BTreeSet<usize> = l.stripe_disks(stripe).into_iter().collect();
            assert_eq!(disks.len(), 13, "stripe {stripe} reuses a disk");
            assert!(disks.iter().all(|&d| d < 101));
        }
    }

    #[test]
    fn clustered_matches_the_legacy_rules() {
        let fixed = ClusteredLayout::new(100, 7, false);
        let rot = ClusteredLayout::new(100, 7, true);
        for s in 0..40u32 {
            for c in 0..7 {
                assert_eq!(fixed.disk_of(s, c), c);
                assert_eq!(rot.disk_of(s, c), (c + s as usize) % 100);
            }
        }
    }

    #[test]
    fn declustering_spreads_a_column_over_the_array() {
        // Column 0's physical home under D3 visits most of the array;
        // under fixed clustering it never leaves disk 0.
        let l = D3Layout::new(128, 7, 7);
        let homes: BTreeSet<usize> = (0..2048u32).map(|s| l.disk_of(s, 0)).collect();
        assert!(
            homes.len() > 100,
            "column 0 touched only {} of 128 disks",
            homes.len()
        );
    }

    #[test]
    fn placement_is_deterministic_in_the_seed() {
        let a = D3Layout::new(100, 7, 9);
        let b = D3Layout::new(100, 7, 9);
        let c = D3Layout::new(100, 7, 10);
        let sig =
            |l: &D3Layout| -> Vec<usize> { (0..256u32).flat_map(|s| l.stripe_disks(s)).collect() };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c), "different seeds give different layouts");
    }

    #[test]
    fn one_disk_array_degenerates_cleanly() {
        assert_eq!(declustered_disk(1, 5, 9, 0), 0);
        let l = D3Layout::new(1, 1, 0);
        assert_eq!(l.stripe_disks(3), vec![0]);
    }

    #[test]
    fn slope_is_always_a_unit() {
        for n in 2..200u64 {
            for draw in 0..50 {
                let b = coprime_slope(draw, n);
                assert!(b >= 1 && b < n);
                assert_eq!(gcd(b, n), 1, "slope {b} not coprime to {n}");
            }
        }
    }
}
