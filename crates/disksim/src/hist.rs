//! Log-bucketed latency histograms.
//!
//! Mean response time (the paper's Fig. 10 metric) hides tail behaviour —
//! and recovery workloads have heavy tails: a chunk read behind a deep
//! disk queue waits many service times. [`Histogram`] records every
//! response in logarithmic buckets (~7% relative width) so the engine can
//! report p50/p95/p99 alongside the mean at negligible cost.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Buckets per power of two — 2^(1/8) spacing ≈ 9% relative resolution.
const SUB_BUCKETS: usize = 8;
/// Covers 1 ns .. ~2^40 ns (≈ 18 minutes) of latency.
const BUCKETS: usize = 40 * SUB_BUCKETS;

/// A fixed-size logarithmic histogram of time spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(t: SimTime) -> usize {
        let ns = t.as_nanos().max(1);
        // log2(ns) * SUB_BUCKETS, computed in integer arithmetic.
        let lz = 63 - ns.leading_zeros() as usize; // floor(log2)
        let frac = ns >> lz.saturating_sub(3); // top 4 bits → 8 sub-steps
        let sub = (frac as usize).saturating_sub(8).min(SUB_BUCKETS - 1);
        (lz * SUB_BUCKETS + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket.
    fn bucket_value(bucket: usize) -> SimTime {
        let exp = bucket / SUB_BUCKETS;
        let sub = bucket % SUB_BUCKETS;
        let base = 1u64 << exp.min(62);
        SimTime::from_nanos(base + (base / SUB_BUCKETS as u64) * (sub as u64 + 1))
    }

    /// Record one span.
    pub fn record(&mut self, t: SimTime) {
        self.counts[Self::bucket_of(t)] += 1;
        self.total += 1;
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 < q <= 1) as a bucket-resolution estimate;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<SimTime> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(i));
            }
        }
        Some(Self::bucket_value(BUCKETS - 1))
    }

    /// Median.
    pub fn p50(&self) -> Option<SimTime> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<SimTime> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<SimTime> {
        self.quantile(0.99)
    }

    /// Merge another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = Histogram::new();
        h.record(SimTime::from_millis(10));
        let p50 = h.p50().unwrap();
        // Bucket resolution ~9%.
        let err = (p50.as_millis_f64() - 10.0).abs() / 10.0;
        assert!(err < 0.15, "p50 {} vs 10ms", p50);
        assert_eq!(h.p50(), h.p99());
    }

    #[test]
    fn quantiles_order() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 10));
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        // p50 ≈ 5 ms, p99 ≈ 9.9 ms.
        assert!((p50.as_millis_f64() - 5.0).abs() < 1.0, "p50 {}", p50);
        assert!((p99.as_millis_f64() - 9.9).abs() < 1.5, "p99 {}", p99);
    }

    #[test]
    fn heavy_tail_visible() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimTime::from_millis(1));
        }
        h.record(SimTime::from_secs(1));
        assert!(h.p50().unwrap() < SimTime::from_millis(2));
        assert!(h.p99().unwrap() < SimTime::from_secs(2));
        assert!(h.quantile(1.0).unwrap() >= SimTime::from_millis(900));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimTime::from_millis(1));
        b.record(SimTime::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0).unwrap() > SimTime::from_millis(50));
    }

    #[test]
    fn tiny_and_huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(SimTime::from_nanos(0));
        h.record(SimTime::from_secs(1 << 20));
        assert_eq!(h.count(), 2);
        assert!(h.p50().is_some());
    }
}
