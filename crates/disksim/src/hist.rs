//! Log-bucketed latency histograms.
//!
//! Mean response time (the paper's Fig. 10 metric) hides tail behaviour —
//! and recovery workloads have heavy tails: a chunk read behind a deep
//! disk queue waits many service times. [`Histogram`] records every
//! response in logarithmic buckets (~7% relative width) so the engine can
//! report p50/p95/p99 alongside the mean at negligible cost.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Buckets per power of two — 2^(1/8) spacing ≈ 9% relative resolution.
const SUB_BUCKETS: usize = 8;
/// Covers 1 ns .. ~2^40 ns (≈ 18 minutes) of latency.
const BUCKETS: usize = 40 * SUB_BUCKETS;

/// A fixed-size logarithmic histogram of time spans.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(t: SimTime) -> usize {
        let ns = t.as_nanos().max(1);
        // log2(ns) * SUB_BUCKETS, computed in integer arithmetic: the
        // exponent picks the power-of-two decade, the 3 bits below the
        // leading bit pick the sub-bucket. Values below 8 ns have fewer
        // than 3 bits after the leading one, so the fraction is scaled
        // *up* instead — `(ns - base) * 8 / base` — which keeps the
        // mapping monotonic instead of collapsing 1..8 ns into the
        // bottom sub-bucket of each decade.
        let lz = 63 - ns.leading_zeros() as usize; // floor(log2)
        let base = 1u64 << lz;
        let sub = if lz >= 3 {
            ((ns >> (lz - 3)) - 8) as usize
        } else {
            (((ns - base) << 3) >> lz) as usize
        };
        let sub = sub.min(SUB_BUCKETS - 1);
        (lz * SUB_BUCKETS + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket.
    fn bucket_value(bucket: usize) -> SimTime {
        let exp = bucket / SUB_BUCKETS;
        let sub = bucket % SUB_BUCKETS;
        let base = 1u64 << exp.min(62);
        // base * (1 + (sub+1)/8), in u128 so small decades don't round
        // the fractional step to zero.
        let edge = base as u128 + (base as u128 * (sub as u128 + 1)) / SUB_BUCKETS as u128;
        SimTime::from_nanos(edge.min(u64::MAX as u128) as u64)
    }

    /// Record one span.
    pub fn record(&mut self, t: SimTime) {
        self.counts[Self::bucket_of(t)] += 1;
        self.total += 1;
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 < q <= 1) as a bucket-resolution estimate;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<SimTime> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(i));
            }
        }
        Some(Self::bucket_value(BUCKETS - 1))
    }

    /// Median.
    pub fn p50(&self) -> Option<SimTime> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<SimTime> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<SimTime> {
        self.quantile(0.99)
    }

    /// Merge another histogram in.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = Histogram::new();
        h.record(SimTime::from_millis(10));
        let p50 = h.p50().unwrap();
        // Bucket resolution ~9%.
        let err = (p50.as_millis_f64() - 10.0).abs() / 10.0;
        assert!(err < 0.15, "p50 {} vs 10ms", p50);
        assert_eq!(h.p50(), h.p99());
    }

    #[test]
    fn quantiles_order() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 10));
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        // p50 ≈ 5 ms, p99 ≈ 9.9 ms.
        assert!((p50.as_millis_f64() - 5.0).abs() < 1.0, "p50 {}", p50);
        assert!((p99.as_millis_f64() - 9.9).abs() < 1.5, "p99 {}", p99);
    }

    #[test]
    fn heavy_tail_visible() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimTime::from_millis(1));
        }
        h.record(SimTime::from_secs(1));
        assert!(h.p50().unwrap() < SimTime::from_millis(2));
        assert!(h.p99().unwrap() < SimTime::from_secs(2));
        assert!(h.quantile(1.0).unwrap() >= SimTime::from_millis(900));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimTime::from_millis(1));
        b.record(SimTime::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0).unwrap() > SimTime::from_millis(50));
    }

    #[test]
    fn bucket_edges_pinned() {
        let b = |ns: u64| Histogram::bucket_of(SimTime::from_nanos(ns));
        // Decade lz=0 (1 ns): no sub-resolution possible.
        assert_eq!(b(0), 0, "0 clamps to 1 ns");
        assert_eq!(b(1), 0);
        // Decade lz=1 (2..4 ns): 2 values over 8 sub-buckets.
        assert_eq!(b(2), 8);
        assert_eq!(b(3), 12);
        // Decade lz=2 (4..8 ns): 4 values, every other sub-bucket.
        assert_eq!(b(4), 16);
        assert_eq!(b(5), 18);
        assert_eq!(b(6), 20);
        assert_eq!(b(7), 22);
        // From 8 ns up, full 8-way sub-resolution.
        assert_eq!(b(8), 24);
        assert_eq!(b(9), 25);
        assert_eq!(b(15), 31);
        assert_eq!(b(16), 32);
        // Every power of two starts its decade.
        for lz in 0..40usize {
            assert_eq!(b(1u64 << lz), lz * SUB_BUCKETS, "2^{lz}");
        }
    }

    #[test]
    fn bucket_of_is_monotonic() {
        let mut prev = 0usize;
        for ns in 1..=65_536u64 {
            let bucket = Histogram::bucket_of(SimTime::from_nanos(ns));
            assert!(
                bucket >= prev,
                "bucket_of({ns}) = {bucket} < bucket_of({}) = {prev}",
                ns - 1
            );
            prev = bucket;
        }
    }

    #[test]
    fn bucket_value_is_an_upper_edge() {
        // Each recorded value must not exceed its bucket's representative
        // upper edge — quantile estimates then never under-report.
        for ns in 1..=4_096u64 {
            let bucket = Histogram::bucket_of(SimTime::from_nanos(ns));
            let edge = Histogram::bucket_value(bucket).as_nanos();
            assert!(edge >= ns, "bucket_value({bucket}) = {edge} < {ns}");
        }
    }

    #[test]
    fn sub_nanosecond_decades_resolve() {
        // The old math collapsed everything under 8 ns into its decade's
        // first sub-bucket; 3, 6, and 7 ns must now resolve distinctly.
        let b = |ns: u64| Histogram::bucket_of(SimTime::from_nanos(ns));
        assert_ne!(b(2), b(3));
        assert_ne!(b(4), b(6));
        assert_ne!(b(6), b(7));
    }

    #[test]
    fn tiny_and_huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(SimTime::from_nanos(0));
        h.record(SimTime::from_secs(1 << 20));
        assert_eq!(h.count(), 2);
        assert!(h.p50().is_some());
    }
}
