//! Log-bucketed latency histograms.
//!
//! Mean response time (the paper's Fig. 10 metric) hides tail behaviour —
//! and recovery workloads have heavy tails: a chunk read behind a deep
//! disk queue waits many service times. [`Histogram`] records every
//! response in logarithmic buckets (~9% relative width) so the engine can
//! report p50/p90/p95/p99/p999 alongside the mean at negligible cost.
//!
//! The bucketing itself lives in [`fbf_obs::digest::Digest`] — the
//! mergeable `fbf-metrics` digest — and this type is a [`SimTime`]-typed
//! wrapper over it. Same math, same buckets, same quantile estimates as
//! before the extraction (the `bucket_edges_pinned` test pins that), plus
//! the digest's guarantees: deterministic associative merge and exact
//! count conservation, so per-worker histograms recorded independently
//! combine at sweep gather time into exactly the serial-run histogram.

use crate::time::SimTime;
use fbf_obs::digest::Digest;
use serde::{Deserialize, Serialize};

/// A fixed-size logarithmic histogram of time spans.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    digest: Digest,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(test)]
    fn bucket_of(t: SimTime) -> usize {
        Digest::bucket_of_ns(t.as_nanos())
    }

    #[cfg(test)]
    fn bucket_value(bucket: usize) -> SimTime {
        SimTime::from_nanos(Digest::bucket_upper_ns(bucket))
    }

    /// Record one span.
    pub fn record(&mut self, t: SimTime) {
        self.digest.record_ns(t.as_nanos());
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.digest.count()
    }

    /// The `q`-quantile (0 < q <= 1) as a bucket-resolution estimate;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<SimTime> {
        self.digest.quantile_ns(q).map(SimTime::from_nanos)
    }

    /// Median.
    pub fn p50(&self) -> Option<SimTime> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<SimTime> {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<SimTime> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<SimTime> {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the deep tail the paper's mean metric hides.
    pub fn p999(&self) -> Option<SimTime> {
        self.quantile(0.999)
    }

    /// Merge another histogram in (associative and commutative; counts
    /// are conserved exactly).
    pub fn merge(&mut self, other: &Histogram) {
        self.digest.merge(&other.digest);
    }

    /// The underlying mergeable digest (SLO evaluation, Prometheus
    /// exposition).
    pub fn digest(&self) -> &Digest {
        &self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbf_obs::digest::{BUCKETS, SUB_BUCKETS};

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = Histogram::new();
        h.record(SimTime::from_millis(10));
        let p50 = h.p50().unwrap();
        // Bucket resolution ~9%.
        let err = (p50.as_millis_f64() - 10.0).abs() / 10.0;
        assert!(err < 0.15, "p50 {} vs 10ms", p50);
        assert_eq!(h.p50(), h.p99());
    }

    #[test]
    fn quantiles_order() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_micros(i * 10));
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.p90().unwrap() <= p95);
        assert!(p99 <= h.p999().unwrap());
        // p50 ≈ 5 ms, p99 ≈ 9.9 ms.
        assert!((p50.as_millis_f64() - 5.0).abs() < 1.0, "p50 {}", p50);
        assert!((p99.as_millis_f64() - 9.9).abs() < 1.5, "p99 {}", p99);
    }

    #[test]
    fn heavy_tail_visible() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimTime::from_millis(1));
        }
        h.record(SimTime::from_secs(1));
        assert!(h.p50().unwrap() < SimTime::from_millis(2));
        assert!(h.p99().unwrap() < SimTime::from_secs(2));
        assert!(h.quantile(1.0).unwrap() >= SimTime::from_millis(900));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimTime::from_millis(1));
        b.record(SimTime::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0).unwrap() > SimTime::from_millis(50));
    }

    #[test]
    fn bucket_edges_pinned() {
        let b = |ns: u64| Histogram::bucket_of(SimTime::from_nanos(ns));
        // Decade lz=0 (1 ns): no sub-resolution possible.
        assert_eq!(b(0), 0, "0 clamps to 1 ns");
        assert_eq!(b(1), 0);
        // Decade lz=1 (2..4 ns): 2 values over 8 sub-buckets.
        assert_eq!(b(2), 8);
        assert_eq!(b(3), 12);
        // Decade lz=2 (4..8 ns): 4 values, every other sub-bucket.
        assert_eq!(b(4), 16);
        assert_eq!(b(5), 18);
        assert_eq!(b(6), 20);
        assert_eq!(b(7), 22);
        // From 8 ns up, full 8-way sub-resolution.
        assert_eq!(b(8), 24);
        assert_eq!(b(9), 25);
        assert_eq!(b(15), 31);
        assert_eq!(b(16), 32);
        // Every power of two starts its decade.
        for lz in 0..40usize {
            assert_eq!(b(1u64 << lz), lz * SUB_BUCKETS, "2^{lz}");
        }
    }

    #[test]
    fn bucket_of_is_monotonic() {
        let mut prev = 0usize;
        for ns in 1..=65_536u64 {
            let bucket = Histogram::bucket_of(SimTime::from_nanos(ns));
            assert!(
                bucket >= prev,
                "bucket_of({ns}) = {bucket} < bucket_of({}) = {prev}",
                ns - 1
            );
            prev = bucket;
        }
    }

    #[test]
    fn bucket_value_is_an_upper_edge() {
        // Each recorded value must not exceed its bucket's representative
        // upper edge — quantile estimates then never under-report.
        for ns in 1..=4_096u64 {
            let bucket = Histogram::bucket_of(SimTime::from_nanos(ns));
            let edge = Histogram::bucket_value(bucket).as_nanos();
            assert!(edge >= ns, "bucket_value({bucket}) = {edge} < {ns}");
        }
    }

    #[test]
    fn sub_nanosecond_decades_resolve() {
        // The old math collapsed everything under 8 ns into its decade's
        // first sub-bucket; 3, 6, and 7 ns must now resolve distinctly.
        let b = |ns: u64| Histogram::bucket_of(SimTime::from_nanos(ns));
        assert_ne!(b(2), b(3));
        assert_ne!(b(4), b(6));
        assert_ne!(b(6), b(7));
    }

    #[test]
    fn tiny_and_huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(SimTime::from_nanos(0));
        h.record(SimTime::from_secs(1 << 20));
        assert_eq!(h.count(), 2);
        assert!(h.p50().is_some());
        let _ = BUCKETS; // dimension re-exported from the digest
    }

    #[test]
    fn wrapper_exposes_the_digest() {
        let mut h = Histogram::new();
        h.record(SimTime::from_millis(3));
        assert_eq!(h.digest().count(), 1);
        assert_eq!(h.digest().sum_ns(), 3_000_000);
    }

    #[test]
    fn u64_max_is_a_real_upper_edge() {
        // Regression: the overflow bucket used to report its decade's
        // arithmetic edge (~2^40), silently under-reporting any clamped
        // sample. Its edge is now u64::MAX.
        let mut h = Histogram::new();
        h.record(SimTime::from_nanos(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(SimTime::from_nanos(u64::MAX)));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Nanosecond samples biased toward the edges the bucketing math
        /// has to get right: tiny decades, decade boundaries, the top
        /// (overflow) bucket, and u64::MAX itself.
        fn edge_ns() -> impl Strategy<Value = u64> {
            prop_oneof![
                0u64..=16,
                0u64..=u64::MAX,
                (0u32..64).prop_map(|s| 1u64 << s),
                (0u32..64).prop_map(|s| (1u64 << s).wrapping_sub(1)),
                Just(u64::MAX),
                Just(u64::MAX - 1),
            ]
        }

        proptest! {
            #[test]
            fn quantiles_never_under_report(samples in proptest::collection::vec(edge_ns(), 1..64)) {
                let mut h = Histogram::new();
                for &ns in &samples {
                    h.record(SimTime::from_nanos(ns));
                }
                let max = samples.iter().copied().max().unwrap().max(1);
                // Every recorded value is <= its bucket's upper edge, so
                // the top quantile dominates the true max (values below
                // 1 ns clamp up to 1).
                prop_assert!(h.quantile(1.0).unwrap().as_nanos() >= max);
                prop_assert_eq!(h.count(), samples.len() as u64);
            }

            #[test]
            fn merge_is_lossless_and_order_free(
                xs in proptest::collection::vec(edge_ns(), 0..48),
                ys in proptest::collection::vec(edge_ns(), 0..48),
            ) {
                let mut together = Histogram::new();
                let mut a = Histogram::new();
                let mut b = Histogram::new();
                for &ns in &xs {
                    together.record(SimTime::from_nanos(ns));
                    a.record(SimTime::from_nanos(ns));
                }
                for &ns in &ys {
                    together.record(SimTime::from_nanos(ns));
                    b.record(SimTime::from_nanos(ns));
                }
                // Either merge direction — including when a side is
                // empty — must reproduce the serial recording exactly.
                let mut ab = a.clone();
                ab.merge(&b);
                let mut ba = b.clone();
                ba.merge(&a);
                prop_assert_eq!(&ab, &together);
                prop_assert_eq!(&ba, &together);
            }

            #[test]
            fn bucket_of_is_monotonic_at_random_points(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
                let (lo, hi) = (a.min(b), a.max(b));
                prop_assert!(
                    Histogram::bucket_of(SimTime::from_nanos(lo))
                        <= Histogram::bucket_of(SimTime::from_nanos(hi))
                );
            }

            #[test]
            fn bucket_value_dominates_its_members(ns in edge_ns()) {
                let bucket = Histogram::bucket_of(SimTime::from_nanos(ns));
                let edge = Histogram::bucket_value(bucket).as_nanos();
                prop_assert!(edge >= ns.max(1), "bucket_value({bucket}) = {edge} < {ns}");
            }
        }
    }
}
