//! Property tests for the erasure-code substrate.

use fbf_codes::decode::decode;
use fbf_codes::encode::{encode, verify};
use fbf_codes::{Cell, CodeSpec, Stripe, StripeCode};
use proptest::prelude::*;

fn any_spec() -> impl Strategy<Value = CodeSpec> {
    prop_oneof![
        Just(CodeSpec::Tip),
        Just(CodeSpec::Hdd1),
        Just(CodeSpec::TripleStar),
        Just(CodeSpec::Star),
        Just(CodeSpec::Rdp),
        Just(CodeSpec::Evenodd),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding always yields a stripe in which every chain verifies.
    #[test]
    fn encode_always_consistent(spec in any_spec(), p_idx in 0usize..3, size in 1usize..128) {
        let p = [5usize, 7, 11][p_idx];
        let code = StripeCode::build(spec, p).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), size);
        encode(&code, &mut stripe).unwrap();
        prop_assert!(verify(&code, &stripe).is_empty());
    }

    /// Erasing any random subset of up to `fault_tolerance` full columns
    /// is always decodable, and decoding restores the exact payloads.
    #[test]
    fn column_erasures_within_tolerance_decode(
        spec in any_spec(),
        cols in proptest::collection::btree_set(0usize..16, 1..4),
        seed in 0u64..500,
    ) {
        let p = 5;
        let code = StripeCode::build(spec, p).unwrap();
        let cols: Vec<usize> = cols
            .into_iter()
            .map(|c| c % code.cols())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(code.spec().fault_tolerance())
            .collect();
        let _ = seed;
        let mut stripe = Stripe::patterned(code.layout(), 24);
        encode(&code, &mut stripe).unwrap();
        let pristine = stripe.clone();
        let erased: Vec<Cell> = cols
            .iter()
            .flat_map(|&c| (0..code.rows()).map(move |r| Cell::new(r, c)))
            .collect();
        for &cell in &erased {
            stripe.erase(code.layout(), cell);
        }
        decode(&code, &mut stripe, &erased).unwrap();
        for &cell in &erased {
            prop_assert_eq!(stripe.get(code.layout(), cell), pristine.get(code.layout(), cell));
        }
    }

    /// Any *random scattered* erasure of up to 3 cells decodes on the
    /// 3DFT codes (scattered damage is strictly easier than column
    /// damage).
    #[test]
    fn scattered_triple_erasures_decode_3dft(
        spec_idx in 0usize..4,
        cells in proptest::collection::btree_set((0usize..6, 0usize..10), 1..4),
    ) {
        let spec = CodeSpec::ALL[spec_idx];
        let code = StripeCode::build(spec, 7).unwrap();
        let erased: Vec<Cell> = cells
            .into_iter()
            .map(|(r, c)| Cell::new(r % code.rows(), c % code.cols()))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut stripe = Stripe::patterned(code.layout(), 16);
        encode(&code, &mut stripe).unwrap();
        let pristine = stripe.clone();
        for &cell in &erased {
            stripe.erase(code.layout(), cell);
        }
        decode(&code, &mut stripe, &erased).unwrap();
        for &cell in &erased {
            prop_assert_eq!(stripe.get(code.layout(), cell), pristine.get(code.layout(), cell));
        }
    }

    /// Chain membership is symmetric with chain contents: `chains_of(cell)`
    /// returns exactly the chains whose `covers(cell)` holds.
    #[test]
    fn membership_matches_coverage(spec in any_spec(), p_idx in 0usize..2) {
        let p = [5usize, 7][p_idx];
        let code = StripeCode::build(spec, p).unwrap();
        for cell in code.layout().cells() {
            let members: std::collections::BTreeSet<_> =
                code.chains_of(cell).iter().copied().collect();
            let brute: std::collections::BTreeSet<_> = code
                .chains()
                .iter()
                .filter(|c| c.covers(cell))
                .map(|c| c.id)
                .collect();
            prop_assert_eq!(&members, &brute, "{}", cell);
        }
    }

    /// Corrupting one cell always breaks at least one chain (no silent
    /// corruption is invisible to the scrubber), except for cells outside
    /// every chain — which must not exist.
    #[test]
    fn every_cell_is_covered(spec in any_spec(), p_idx in 0usize..2) {
        let p = [5usize, 7][p_idx];
        let code = StripeCode::build(spec, p).unwrap();
        for cell in code.layout().cells() {
            prop_assert!(
                !code.chains_of(cell).is_empty(),
                "{} covered by no chain — invisible to scrubbing", cell
            );
        }
    }
}
