//! Differential tests: every dispatchable XOR kernel vs the scalar
//! reference.
//!
//! The SIMD rewrite keeps the original word-wise kernels verbatim in
//! `xor::scalar` exactly so they can serve as the oracle here. Each
//! property drives the full kernel matrix (`supported_kernels()` — on a
//! non-x86 or pre-SSE2 host that is just `[Scalar]` and the suite
//! degenerates to a self-check) over adversarial shapes: lengths that
//! are not multiples of any vector width, buffers deliberately
//! misaligned by 0..8 bytes, and source counts straddling the fold
//! width on both sides.

use fbf_codes::xor::{
    is_zero_with, scalar, supported_kernels, xor_fold_into_with, xor_into_with, xor_many_with,
    FOLD_WIDTH, MANY_FOLD_WIDTH,
};
use proptest::prelude::*;

/// Deterministic bytes from a seed — xorshift, one byte per step.
fn bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

/// A buffer whose payload starts `off` bytes into the allocation, so
/// SIMD loads/stores see every alignment class.
fn offset_buf(seed: u64, off: usize, len: usize) -> (Vec<u8>, std::ops::Range<usize>) {
    (bytes(seed, off + len + 8), off..off + len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `xor_into` (dst ^= src) is byte-identical to the scalar kernel on
    /// every supported kernel, at every length and misalignment.
    #[test]
    fn xor_into_matches_scalar(
        len in 0usize..=4096,
        dst_off in 0usize..8,
        src_off in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let (src_buf, src_r) = offset_buf(seed ^ 0xBEEF, src_off, len);
        let (dst_buf, dst_r) = offset_buf(seed, dst_off, len);

        let mut expected = dst_buf.clone();
        scalar::xor_into(&mut expected[dst_r.clone()], &src_buf[src_r.clone()]);

        for &k in &supported_kernels() {
            let mut got = dst_buf.clone();
            xor_into_with(k, &mut got[dst_r.clone()], &src_buf[src_r.clone()]);
            prop_assert_eq!(&got, &expected, "kernel {:?} diverged", k);
        }
    }

    /// `xor_many` (dst = ⊕ srcs) is byte-identical to the scalar kernel
    /// for source counts straddling both fold widths: 0..=13 covers the
    /// single seeded pass (≤ MANY_FOLD_WIDTH=8), a partial continuation
    /// group, and a full FOLD_WIDTH=4 continuation group (12+ sources) —
    /// independent of the dst's prior contents.
    #[test]
    fn xor_many_matches_scalar(
        len in 0usize..=4096,
        dst_off in 0usize..8,
        src_offs in proptest::collection::vec(0usize..8, 0..14),
        seed in 0u64..u64::MAX,
    ) {
        prop_assert!(
            MANY_FOLD_WIDTH + FOLD_WIDTH <= 13,
            "widen src_offs to keep straddling both fold widths"
        );
        let srcs: Vec<(Vec<u8>, std::ops::Range<usize>)> = src_offs
            .iter()
            .enumerate()
            .map(|(i, &off)| offset_buf(seed.wrapping_add(i as u64 * 0x9E37), off, len))
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|(b, r)| &b[r.clone()]).collect();

        let mut expected = vec![0u8; len];
        scalar::xor_many(&mut expected, &refs);

        for &k in &supported_kernels() {
            // Poisoned dst: xor_many must fully overwrite it.
            let (dst_buf, dst_r) = offset_buf(!seed, dst_off, len);
            let mut got = dst_buf;
            xor_many_with(k, &mut got[dst_r.clone()], &refs);
            prop_assert_eq!(&got[dst_r.clone()], &expected[..], "kernel {:?} diverged", k);
        }
    }

    /// The fold primitive agrees with a scalar re-derivation in both
    /// seed modes: seeded folds overwrite dst with ⊕ group, unseeded
    /// folds accumulate ⊕ group on top of dst.
    #[test]
    fn fold_matches_scalar_in_both_seed_modes(
        len in 0usize..=4096,
        group_len in 1usize..=4,
        seed_sel in 0u8..2,
        seed in 0u64..u64::MAX,
    ) {
        let seed_mode = seed_sel == 1;
        let srcs: Vec<Vec<u8>> = (0..group_len)
            .map(|i| bytes(seed.wrapping_add(i as u64), len))
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let dst0 = bytes(!seed, len);

        let mut expected = if seed_mode { vec![0u8; len] } else { dst0.clone() };
        for r in &refs {
            scalar::xor_into(&mut expected, r);
        }

        for &k in &supported_kernels() {
            let mut got = dst0.clone();
            xor_fold_into_with(k, &mut got, &refs, seed_mode);
            prop_assert_eq!(&got, &expected, "kernel {:?} seed={} diverged", k, seed_mode);
        }
    }

    /// `is_zero` agrees with the scalar kernel on all-zero buffers and on
    /// buffers poisoned at an arbitrary position.
    #[test]
    fn is_zero_matches_scalar(
        len in 0usize..=4096,
        off in 0usize..8,
        poison_sel in 0usize..8192,
        bit in 0u8..8,
    ) {
        // poison_sel >= 4096 means "no poison" (the stub proptest has no
        // Option strategy); otherwise it picks the poisoned byte.
        let mut buf = vec![0u8; off + len + 8];
        if poison_sel < 4096 && len > 0 {
            buf[off + poison_sel % len] = 1 << bit;
        }
        let slice = &buf[off..off + len];
        let expected = scalar::is_zero(slice);
        for &k in &supported_kernels() {
            prop_assert_eq!(is_zero_with(k, slice), expected, "kernel {:?} diverged", k);
        }
    }
}

/// Zero sources must zero the destination on every dispatch path — the
/// edge the fold rewrite originally got wrong (pinned here and in the
/// unit suite).
#[test]
fn zero_sources_zero_the_dst_on_every_kernel() {
    for &k in &supported_kernels() {
        for len in [0usize, 1, 7, 64, 4097] {
            let mut dst = vec![0xEEu8; len];
            xor_many_with(k, &mut dst, &[]);
            assert!(dst.iter().all(|&b| b == 0), "kernel {k:?} len {len}");
        }
    }
}
