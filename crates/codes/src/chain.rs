//! Parity chains: the XOR equations that tie a stripe together.
//!
//! Every 3DFT code in this crate is defined by a set of *parity chains*. A
//! chain is one XOR equation: the XOR of all its member cells and its parity
//! cell is zero. Chains come in three *directions* — horizontal, diagonal
//! and anti-diagonal (for HDD1 the third direction is a second diagonal of
//! slope 2, but it plays the same structural role).
//!
//! The FBF scheme is built entirely on chain-membership structure: a lost
//! chunk can be repaired through any one of the chains it belongs to, and a
//! surviving chunk that sits on several *chosen* chains is a "favorable
//! block" worth keeping in cache.

use crate::layout::Cell;
use serde::{Deserialize, Serialize};

/// The three chain directions of a 3DFT code.
///
/// The numeric discriminants match the `CellKind::Parity(d)` direction index
/// in [`crate::layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Row-aligned chains (RAID-4/5 style parity).
    Horizontal = 0,
    /// Slope `+1` diagonal chains.
    Diagonal = 1,
    /// Slope `-1` chains for TIP / Triple-STAR / STAR; slope `+2` for HDD1.
    AntiDiagonal = 2,
}

impl Direction {
    /// All directions, in the order FBF's scheme generator cycles them
    /// (§III-A-1: "simply looping parity chains of three directions").
    pub const ALL: [Direction; 3] = [
        Direction::Horizontal,
        Direction::Diagonal,
        Direction::AntiDiagonal,
    ];

    /// Direction index, `0..3`.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Direction from index, panicking on `>= 3`.
    pub fn from_index(i: usize) -> Direction {
        match i {
            0 => Direction::Horizontal,
            1 => Direction::Diagonal,
            2 => Direction::AntiDiagonal,
            _ => panic!("direction index {i} out of range"),
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::Horizontal => "horizontal",
            Direction::Diagonal => "diagonal",
            Direction::AntiDiagonal => "anti-diagonal",
        };
        f.write_str(s)
    }
}

/// Identifier of a chain within one stripe's chain set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChainId(pub u16);

impl ChainId {
    /// Index into the code's chain list.
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// One parity chain: `XOR(members) == parity`.
///
/// `members` never contains `parity`; for STAR the adjuster-line data cells
/// are folded into `members` of every diagonal (resp. anti-diagonal) chain,
/// so this single equation form covers all four shipped codes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityChain {
    /// Identifier within the stripe's chain set.
    pub id: ChainId,
    /// Chain family.
    pub direction: Direction,
    /// Line index within the family (row number / diagonal residue).
    pub line: u16,
    /// Cells XOR-ed together to produce the parity. Sorted, deduplicated.
    pub members: Vec<Cell>,
    /// The cell storing the XOR of `members`.
    pub parity: Cell,
}

impl ParityChain {
    /// Build a chain, normalising member order and rejecting degenerate
    /// shapes in debug builds.
    pub fn new(
        id: ChainId,
        direction: Direction,
        line: u16,
        mut members: Vec<Cell>,
        parity: Cell,
    ) -> Self {
        members.sort_unstable();
        members.dedup();
        debug_assert!(!members.is_empty(), "chain {id:?} has no members");
        debug_assert!(
            !members.contains(&parity),
            "chain {id:?} parity cell listed as member"
        );
        ParityChain {
            id,
            direction,
            line,
            members,
            parity,
        }
    }

    /// Number of member cells (excluding the parity cell).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Chains always have at least one member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Does the chain touch this cell, either as member or parity?
    #[inline]
    pub fn covers(&self, cell: Cell) -> bool {
        self.parity == cell || self.members.binary_search(&cell).is_ok()
    }

    /// All cells of the chain: members plus parity.
    pub fn all_cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.members
            .iter()
            .copied()
            .chain(std::iter::once(self.parity))
    }

    /// The cells that must be read to rebuild `target` through this chain —
    /// every other cell of the equation.
    ///
    /// Panics if the chain does not cover `target` (callers look chains up
    /// through membership tables, so this indicates a logic error).
    pub fn repair_reads(&self, target: Cell) -> Vec<Cell> {
        assert!(
            self.covers(target),
            "chain {:?} does not cover {target}",
            self.id
        );
        self.all_cells().filter(|&c| c != target).collect()
    }
}

/// Per-cell chain membership table for one stripe.
///
/// Maps each cell (by its row-major layout index) to the chains whose
/// equation includes it. Built once per [`crate::StripeCode`]; lookups are
/// `O(1)` plus the (≤ 3, or ≤ `p+2` for STAR adjuster cells) membership list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Membership {
    per_cell: Vec<Vec<ChainId>>,
    cols: usize,
}

impl Membership {
    /// Build the table from a chain list over a `rows × cols` layout.
    pub fn build(rows: usize, cols: usize, chains: &[ParityChain]) -> Self {
        let mut per_cell = vec![Vec::new(); rows * cols];
        for chain in chains {
            for cell in chain.all_cells() {
                per_cell[cell.r() * cols + cell.c()].push(chain.id);
            }
        }
        for list in &mut per_cell {
            list.sort_unstable();
            list.dedup();
        }
        Membership { per_cell, cols }
    }

    /// Chains covering `cell` (as member or parity).
    #[inline]
    pub fn chains_of(&self, cell: Cell) -> &[ChainId] {
        &self.per_cell[cell.r() * self.cols + cell.c()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(
        id: u16,
        dir: Direction,
        members: &[(usize, usize)],
        parity: (usize, usize),
    ) -> ParityChain {
        ParityChain::new(
            ChainId(id),
            dir,
            id,
            members.iter().map(|&(r, c)| Cell::new(r, c)).collect(),
            Cell::new(parity.0, parity.1),
        )
    }

    #[test]
    fn members_sorted_and_deduped() {
        let c = chain(0, Direction::Horizontal, &[(0, 2), (0, 1), (0, 2)], (0, 3));
        assert_eq!(c.members, vec![Cell::new(0, 1), Cell::new(0, 2)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn covers_members_and_parity() {
        let c = chain(1, Direction::Diagonal, &[(0, 0), (1, 1)], (2, 2));
        assert!(c.covers(Cell::new(0, 0)));
        assert!(c.covers(Cell::new(2, 2)));
        assert!(!c.covers(Cell::new(3, 3)));
    }

    #[test]
    fn repair_reads_excludes_target() {
        let c = chain(2, Direction::Horizontal, &[(0, 0), (0, 1), (0, 2)], (0, 3));
        let reads = c.repair_reads(Cell::new(0, 1));
        assert_eq!(reads.len(), 3);
        assert!(!reads.contains(&Cell::new(0, 1)));
        assert!(reads.contains(&Cell::new(0, 3)), "parity is read too");
    }

    #[test]
    fn repair_reads_of_parity_cell_reads_all_members() {
        let c = chain(3, Direction::Horizontal, &[(0, 0), (0, 1)], (0, 2));
        let reads = c.repair_reads(Cell::new(0, 2));
        assert_eq!(reads, vec![Cell::new(0, 0), Cell::new(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn repair_reads_panics_off_chain() {
        let c = chain(4, Direction::Horizontal, &[(0, 0)], (0, 1));
        c.repair_reads(Cell::new(5, 5));
    }

    #[test]
    fn membership_table() {
        let chains = vec![
            chain(0, Direction::Horizontal, &[(0, 0), (0, 1)], (0, 2)),
            chain(1, Direction::Diagonal, &[(0, 0), (1, 1)], (1, 2)),
        ];
        let m = Membership::build(2, 3, &chains);
        assert_eq!(m.chains_of(Cell::new(0, 0)), &[ChainId(0), ChainId(1)]);
        assert_eq!(m.chains_of(Cell::new(0, 1)), &[ChainId(0)]);
        assert_eq!(m.chains_of(Cell::new(1, 0)), &[] as &[ChainId]);
    }

    #[test]
    fn direction_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }
}
