//! In-memory stripe buffers.
//!
//! A [`Stripe`] holds the chunk payloads of one stripe in row-major cell
//! order. The simulator mostly moves chunk *identities* around (timing does
//! not depend on payload), but the encoder/decoder and the end-to-end
//! integration tests operate on real bytes so that reconstruction can be
//! verified bit-for-bit.

use crate::layout::{Cell, Layout};
use crate::CodeError;
use bytes::{Bytes, BytesMut};

/// One chunk's payload. Cheaply cloneable (reference-counted).
pub type ChunkBuf = Bytes;

/// All chunk payloads of one stripe, indexed by the layout's row-major order.
#[derive(Debug, Clone)]
pub struct Stripe {
    chunk_size: usize,
    chunks: Vec<ChunkBuf>,
}

impl Stripe {
    /// A stripe of all-zero chunks matching `layout`.
    pub fn zeroed(layout: &Layout, chunk_size: usize) -> Self {
        let zero = Bytes::from(vec![0u8; chunk_size]);
        Stripe {
            chunk_size,
            chunks: vec![zero; layout.len()],
        }
    }

    /// Build a stripe from explicit chunk buffers (row-major). All buffers
    /// must share the same length.
    pub fn from_chunks(chunks: Vec<ChunkBuf>) -> Result<Self, CodeError> {
        let chunk_size = chunks.first().map(|c| c.len()).unwrap_or(0);
        for c in &chunks {
            if c.len() != chunk_size {
                return Err(CodeError::ChunkSizeMismatch {
                    expected: chunk_size,
                    got: c.len(),
                });
            }
        }
        Ok(Stripe { chunk_size, chunks })
    }

    /// Fill the data cells of a zeroed stripe from a deterministic
    /// byte pattern derived from the cell address. Useful for tests: each
    /// cell's payload is unique, so mix-ups are caught.
    pub fn patterned(layout: &Layout, chunk_size: usize) -> Self {
        Self::patterned_seeded(layout, chunk_size, 0)
    }

    /// [`Stripe::patterned`] with an extra seed mixed in, so different
    /// *stripes* of an array carry different payloads too.
    pub fn patterned_seeded(layout: &Layout, chunk_size: usize, seed: u64) -> Self {
        let extra = seed;
        let mut s = Stripe::zeroed(layout, chunk_size);
        for cell in layout.data_cells() {
            let mut buf = BytesMut::with_capacity(chunk_size);
            // splitmix64 over a per-cell seed — deterministic, distinct streams.
            let seed = (cell.r() as u64) << 32
                ^ (cell.c() as u64) << 8
                ^ extra.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for _ in 0..chunk_size {
                buf.extend_from_slice(&[(next() >> 56) as u8]);
            }
            s.set(layout, cell, buf.freeze());
        }
        s
    }

    /// Bytes per chunk.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks (equals `layout.len()`).
    #[inline]
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when the stripe holds no chunks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Payload of a cell.
    #[inline]
    pub fn get(&self, layout: &Layout, cell: Cell) -> &ChunkBuf {
        &self.chunks[layout.index_of(cell)]
    }

    /// Replace a cell's payload.
    pub fn set(&mut self, layout: &Layout, cell: Cell, buf: ChunkBuf) {
        assert_eq!(buf.len(), self.chunk_size, "chunk size mismatch in set()");
        let i = layout.index_of(cell);
        self.chunks[i] = buf;
    }

    /// Zero a cell (model an erasure). The payload is replaced so other
    /// clones of the stripe are unaffected.
    pub fn erase(&mut self, layout: &Layout, cell: Cell) {
        self.set(layout, cell, Bytes::from(vec![0u8; self.chunk_size]));
    }

    /// XOR the payloads of `cells` together into a fresh buffer.
    pub fn xor_cells(&self, layout: &Layout, cells: &[Cell]) -> ChunkBuf {
        let mut acc = vec![0u8; self.chunk_size];
        for &cell in cells {
            crate::xor::xor_into(&mut acc, self.get(layout, cell));
        }
        Bytes::from(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn zeroed_stripe_shape() {
        let l = Layout::all_data(4, 6);
        let s = Stripe::zeroed(&l, 64);
        assert_eq!(s.len(), 24);
        assert_eq!(s.chunk_size(), 64);
        assert!(s.get(&l, Cell::new(3, 5)).iter().all(|&b| b == 0));
    }

    #[test]
    fn patterned_cells_are_distinct() {
        let l = Layout::all_data(4, 6);
        let s = Stripe::patterned(&l, 32);
        let a = s.get(&l, Cell::new(0, 0)).clone();
        let b = s.get(&l, Cell::new(0, 1)).clone();
        let c = s.get(&l, Cell::new(1, 0)).clone();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn set_get_roundtrip() {
        let l = Layout::all_data(2, 2);
        let mut s = Stripe::zeroed(&l, 4);
        s.set(&l, Cell::new(1, 1), Bytes::from_static(&[1, 2, 3, 4]));
        assert_eq!(s.get(&l, Cell::new(1, 1)).as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    fn erase_zeroes_cell() {
        let l = Layout::all_data(2, 2);
        let mut s = Stripe::patterned(&l, 16);
        s.erase(&l, Cell::new(0, 0));
        assert!(s.get(&l, Cell::new(0, 0)).iter().all(|&b| b == 0));
        // Other cells untouched.
        assert!(!s.get(&l, Cell::new(0, 1)).iter().all(|&b| b == 0));
    }

    #[test]
    fn xor_cells_is_associative_xor() {
        let l = Layout::all_data(2, 2);
        let s = Stripe::patterned(&l, 8);
        let cells = [Cell::new(0, 0), Cell::new(0, 1), Cell::new(1, 0)];
        let x = s.xor_cells(&l, &cells);
        let mut manual = vec![0u8; 8];
        for c in cells {
            for (i, b) in s.get(&l, c).iter().enumerate() {
                manual[i] ^= b;
            }
        }
        assert_eq!(x.as_ref(), manual.as_slice());
    }

    #[test]
    fn from_chunks_rejects_mismatched_sizes() {
        let r = Stripe::from_chunks(vec![
            Bytes::from_static(&[0; 4]),
            Bytes::from_static(&[0; 5]),
        ]);
        assert!(matches!(
            r,
            Err(CodeError::ChunkSizeMismatch {
                expected: 4,
                got: 5
            })
        ));
    }
}
