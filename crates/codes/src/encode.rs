//! Stripe encoding.
//!
//! Encoding a stripe means computing every parity cell from the data cells.
//! All four codes are encoded by the same routine: walk the chain list in
//! direction order (horizontal, then the first diagonal family, then the
//! second) and set each chain's parity cell to the XOR of its members.
//! Constructors guarantee that a chain's members only reference parity
//! cells of *strictly earlier* directions, so this order is well-defined.

use crate::codes::StripeCode;
use crate::layout::Cell;
use crate::stripe::Stripe;
use crate::xor::xor_into;
use crate::Result;

/// Compute all parity cells of `stripe` in place.
pub fn encode(code: &StripeCode, stripe: &mut Stripe) -> Result<()> {
    // Chains are stored grouped by direction (all H, then D, then A) by the
    // ChainBuilder; rely on that to encode in one pass.
    for chain in code.chains() {
        let parity = compute_parity(code, stripe, &chain.members)?;
        stripe.set(code.layout(), chain.parity, parity);
    }
    Ok(())
}

/// XOR the payloads of `members` into a fresh buffer.
fn compute_parity(code: &StripeCode, stripe: &Stripe, members: &[Cell]) -> Result<crate::ChunkBuf> {
    let mut acc = vec![0u8; stripe.chunk_size()];
    for &cell in members {
        xor_into(&mut acc, stripe.get(code.layout(), cell));
    }
    Ok(bytes::Bytes::from(acc))
}

/// Verify that every chain's equation holds (XOR of members equals parity).
/// Returns the ids of violated chains; empty means the stripe is consistent.
pub fn verify(code: &StripeCode, stripe: &Stripe) -> Vec<crate::ChainId> {
    let mut bad = Vec::new();
    for chain in code.chains() {
        let mut acc = stripe.get(code.layout(), chain.parity).to_vec();
        for &cell in &chain.members {
            xor_into(&mut acc, stripe.get(code.layout(), cell));
        }
        if !crate::xor::is_zero(&acc) {
            bad.push(chain.id);
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSpec;

    #[test]
    fn encode_makes_all_chains_consistent() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 7).unwrap();
            let mut stripe = Stripe::patterned(code.layout(), 64);
            encode(&code, &mut stripe).unwrap();
            assert!(
                verify(&code, &stripe).is_empty(),
                "{spec} inconsistent after encode"
            );
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut stripe).unwrap();
        // Corrupt one data cell.
        let victim = crate::layout::Cell::new(0, 0);
        let mut buf = stripe.get(code.layout(), victim).to_vec();
        buf[0] ^= 0xFF;
        stripe.set(code.layout(), victim, bytes::Bytes::from(buf));
        let bad = verify(&code, &stripe);
        assert!(!bad.is_empty());
        // Every violated chain must actually cover the victim.
        for id in bad {
            assert!(code.chain(id).covers(victim));
        }
    }

    #[test]
    fn zero_stripe_encodes_to_zero_parity() {
        let code = StripeCode::build(CodeSpec::Star, 5).unwrap();
        let mut stripe = Stripe::zeroed(code.layout(), 16);
        encode(&code, &mut stripe).unwrap();
        for cell in code.layout().parity_cells() {
            assert!(crate::xor::is_zero(stripe.get(code.layout(), cell)));
        }
    }
}
