//! Code-structure analysis: the metrics erasure-code papers compare on.
//!
//! The codes the FBF paper evaluates were each published on the strength
//! of structural metrics — storage efficiency (TIP: optimal for `p+1`),
//! update complexity (TIP: optimal; Triple-STAR: optimal encoding
//! complexity), chain lengths (reconstruction cost). This module computes
//! them from the chain set, so the `code_comparison` bench can reproduce
//! that style of table and the tests can pin the expected values.

use crate::codes::StripeCode;
use crate::layout::Cell;
use serde::{Deserialize, Serialize};

/// Structural metrics of one code instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeMetrics {
    /// Fraction of cells storing data (`k / n` in coding terms).
    pub storage_efficiency: f64,
    /// Mean number of parity cells that must be updated when one data
    /// cell is written (chain memberships of a data cell). 3 is optimal
    /// for a 3DFT MDS code; STAR's adjusters push it higher.
    pub avg_update_complexity: f64,
    /// Worst-case update complexity over all data cells.
    pub max_update_complexity: usize,
    /// Mean chain length (members per parity equation) — proportional to
    /// encoding cost per parity cell.
    pub avg_chain_length: f64,
    /// Mean single-chunk repair cost: the cheapest repair option's read
    /// count, averaged over data cells.
    pub avg_repair_reads: f64,
}

/// Compute [`CodeMetrics`] for a built code.
pub fn analyze(code: &StripeCode) -> CodeMetrics {
    let layout = code.layout();
    let data_cells: Vec<Cell> = layout.data_cells().collect();
    let storage_efficiency = data_cells.len() as f64 / layout.len() as f64;

    // Update complexity: writing data cell d requires updating every
    // parity whose equation contains d (chain membership count).
    let (mut sum_upd, mut max_upd) = (0usize, 0usize);
    for &cell in &data_cells {
        let upd = code.chains_of(cell).len();
        sum_upd += upd;
        max_upd = max_upd.max(upd);
    }

    let avg_chain_length =
        code.chains().iter().map(|c| c.len() as f64).sum::<f64>() / code.chains().len() as f64;

    let avg_repair_reads = data_cells
        .iter()
        .map(|&cell| {
            crate::repair::repair_options(code, cell)
                .first()
                .map_or(0, |o| o.cost()) as f64
        })
        .sum::<f64>()
        / data_cells.len() as f64;

    CodeMetrics {
        storage_efficiency,
        avg_update_complexity: sum_upd as f64 / data_cells.len() as f64,
        max_update_complexity: max_upd,
        avg_chain_length,
        avg_repair_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSpec;

    fn metrics(spec: CodeSpec, p: usize) -> CodeMetrics {
        analyze(&StripeCode::build(spec, p).unwrap())
    }

    #[test]
    fn storage_efficiency_exact_values() {
        // All codes keep exactly 3 (or 2 for RAID-6) columns of parity, so
        // efficiency is d / (d + parity_cols) and *rises* with width:
        // STAR (p+3) > Triple-STAR (p+2) > TIP (p+1) at equal p. (Each
        // published code's claim is optimality *at its own disk count*.)
        let tip = metrics(CodeSpec::Tip, 11).storage_efficiency;
        let ts = metrics(CodeSpec::TripleStar, 11).storage_efficiency;
        let star = metrics(CodeSpec::Star, 11).storage_efficiency;
        assert!(star > ts && ts > tip, "{star} {ts} {tip}");
        // Exact values: data = (p-1)*d of (p-1)*(d+3) cells.
        assert!((tip - 9.0 / 12.0).abs() < 1e-12);
        assert!((ts - 10.0 / 13.0).abs() < 1e-12);
        assert!((star - 11.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn adjuster_free_codes_have_near_optimal_update_complexity() {
        // Most data cells sit on 3 chains; cells on the two unprotected
        // residue lines sit on 2. Average must be < 3 and ≥ 2.
        for spec in [CodeSpec::Tip, CodeSpec::Hdd1, CodeSpec::TripleStar] {
            let m = metrics(spec, 11);
            assert!(
                m.avg_update_complexity > 2.0 && m.avg_update_complexity <= 3.0,
                "{spec:?}: {m:?}"
            );
            assert_eq!(m.max_update_complexity, 3, "{spec:?}");
        }
    }

    #[test]
    fn star_adjusters_inflate_update_complexity() {
        // STAR adjuster-line cells appear in every diagonal equation:
        // updating one requires touching ~p parities.
        let m = metrics(CodeSpec::Star, 7);
        assert!(m.max_update_complexity > 3, "{m:?}");
        assert!(m.avg_update_complexity > 3.0, "{m:?}");
    }

    #[test]
    fn raid6_updates_at_most_two_parities() {
        let m = metrics(CodeSpec::Rdp, 7);
        assert!(m.max_update_complexity <= 2);
    }

    #[test]
    fn repair_reads_scale_with_p() {
        let small = metrics(CodeSpec::Tip, 5).avg_repair_reads;
        let large = metrics(CodeSpec::Tip, 13).avg_repair_reads;
        assert!(large > small);
    }
}
