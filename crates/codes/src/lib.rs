//! # fbf-codes — erasure-code substrate for the FBF reproduction
//!
//! This crate implements the XOR-based triple-disk-fault-tolerant (3DFT)
//! erasure codes that the FBF paper evaluates on: **TIP-code**, **HDD1**,
//! **Triple-STAR** and **STAR**, together with everything the cache scheme
//! needs to reason about them:
//!
//! * stripe [`layout`]s (which cell of the `rows × cols` grid is data and
//!   which is parity),
//! * [`chain`]s — the horizontal / diagonal / anti-diagonal parity equations
//!   that tie cells together, and per-cell chain-membership queries,
//! * [`repair`] sets — exactly which surviving chunks must be fetched to
//!   rebuild a lost chunk through a given chain,
//! * an [`encode`]r and a peeling + GF(2)-elimination [`decode`]r so that
//!   reconstruction results can be checked bit-for-bit, and
//! * a word-wide [`xor`] kernel shared by all of the above.
//!
//! Every code is represented uniformly as a [`StripeCode`]: a layout plus a
//! list of XOR equations ([`chain::ParityChain`]). STAR's EVENODD-style
//! adjusters are folded into its diagonal/anti-diagonal equations (the
//! adjuster line's cells are simply members of every diagonal chain), so the
//! generic encoder/decoder and the FBF priority logic treat all four codes
//! identically.
//!
//! ```
//! use fbf_codes::{CodeSpec, StripeCode};
//!
//! let code = StripeCode::build(CodeSpec::Tip, 5).unwrap();
//! assert_eq!(code.cols(), 6);            // TIP uses p + 1 disks
//! assert_eq!(code.rows(), 4);            // p - 1 rows per stripe
//! // every data cell can be repaired through at least one parity chain
//! for cell in code.data_cells() {
//!     assert!(!code.chains_of(cell).is_empty());
//! }
//! ```

pub mod analysis;
pub mod chain;
pub mod codes;
pub mod decode;
pub mod encode;
pub mod hash;
pub mod layout;
pub mod prime;
pub mod repair;
pub mod stripe;
pub mod xor;

pub use analysis::{analyze, CodeMetrics};
pub use chain::{ChainId, Direction, ParityChain};
pub use codes::{CodeSpec, StripeCode};
pub use layout::{Cell, CellKind, ChunkId, Layout};
pub use stripe::{ChunkBuf, Stripe};

/// Error type for code construction and coding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `p` must be a prime number (and large enough for the code family).
    NotPrime(usize),
    /// `p` is prime but too small for the requested code family.
    PrimeTooSmall { p: usize, min: usize },
    /// A chunk buffer had the wrong length.
    ChunkSizeMismatch { expected: usize, got: usize },
    /// The erasure pattern is beyond the decoding capability of the code.
    Unrecoverable { unresolved: usize },
    /// A cell address is outside the stripe layout.
    OutOfBounds(Cell),
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::NotPrime(p) => write!(f, "{p} is not prime"),
            CodeError::PrimeTooSmall { p, min } => {
                write!(f, "prime {p} too small for this code (need >= {min})")
            }
            CodeError::ChunkSizeMismatch { expected, got } => {
                write!(
                    f,
                    "chunk size mismatch: expected {expected} bytes, got {got}"
                )
            }
            CodeError::Unrecoverable { unresolved } => {
                write!(
                    f,
                    "erasure pattern unrecoverable: {unresolved} cells unresolved"
                )
            }
            CodeError::OutOfBounds(c) => write!(f, "cell {c:?} outside stripe layout"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodeError>;
