//! Prime-number utilities.
//!
//! All four 3DFT codes in this crate are *array codes over a prime `p`*: the
//! stripe has `p - 1` rows and the diagonal/anti-diagonal lines wrap modulo
//! `p`. The constructions only work when `p` is prime, so code builders
//! validate their parameter here.

/// Returns `true` if `n` is a prime number.
///
/// Deterministic trial division — the primes used by the paper are tiny
/// (5, 7, 11, 13), so anything fancier would be noise.
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The primes the paper evaluates with (§IV uses `P = 5, 7, 11, 13`).
pub const PAPER_PRIMES: [usize; 4] = [5, 7, 11, 13];

/// `(a - b) mod p`, correct for `a < b`.
#[inline]
pub fn sub_mod(a: usize, b: usize, p: usize) -> usize {
    (a + p - (b % p)) % p
}

/// `(a + b) mod p`.
#[inline]
pub fn add_mod(a: usize, b: usize, p: usize) -> usize {
    (a + b) % p
}

/// Iterator over primes `>= lo`, unbounded. Useful for sweeps and tests.
pub fn primes_from(lo: usize) -> impl Iterator<Item = usize> {
    (lo..).filter(|&n| is_prime(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognised() {
        let primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
    }

    #[test]
    fn composites_rejected() {
        for n in [0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 35, 49, 51, 91] {
            assert!(!is_prime(n), "{n} should not be prime");
        }
    }

    #[test]
    fn paper_primes_are_prime() {
        for p in PAPER_PRIMES {
            assert!(is_prime(p));
        }
    }

    #[test]
    fn sub_mod_wraps() {
        assert_eq!(sub_mod(0, 1, 5), 4);
        assert_eq!(sub_mod(3, 3, 5), 0);
        assert_eq!(sub_mod(2, 4, 7), 5);
        // b may exceed p
        assert_eq!(sub_mod(1, 9, 7), 6);
    }

    #[test]
    fn add_mod_wraps() {
        assert_eq!(add_mod(4, 4, 5), 3);
        assert_eq!(add_mod(0, 0, 5), 0);
    }

    #[test]
    fn primes_from_yields_in_order() {
        let v: Vec<usize> = primes_from(5).take(5).collect();
        assert_eq!(v, vec![5, 7, 11, 13, 17]);
    }
}
