//! XOR kernels: runtime-dispatched SIMD with a scalar differential oracle.
//!
//! Everything in a 3DFT code — encoding, chain repair, full decode — reduces
//! to XOR-ing chunk buffers together. Three kernels implement the same
//! contract:
//!
//! * [`XorKernel::Scalar`] — the original word-wide loop (`align_to::<u64>`
//!   middle, byte edges). Kept verbatim in [`scalar`] as the differential
//!   oracle: every SIMD path must produce byte-identical output, enforced by
//!   the proptest suite in `tests/xor_diff.rs`.
//! * [`XorKernel::Sse2`] — 16-byte lanes, 64-byte strides, unaligned loads.
//! * [`XorKernel::Avx2`] — 32-byte lanes, 64-byte strides, unaligned loads.
//!
//! The active kernel is picked once per process via
//! `is_x86_feature_detected!` and cached ([`active_kernel`]); the
//! `FBF_XOR_KERNEL` env var can *downgrade* the choice (e.g. `scalar` to
//! benchmark the oracle) but never selects an unsupported path.
//!
//! Multi-source decode ([`xor_many`]) folds many sources per pass over `dst`
//! instead of one. The seeded first pass takes up to [`MANY_FOLD_WIDTH`] (8)
//! sources and never reads `dst`; continuation passes take [`FOLD_WIDTH`] (4).
//! For the paper's 6-source decode shape this cuts memory traffic by more
//! than half: sequential `xor_into` does 6 passes (11 buffer reads + 6 writes
//! counting dst re-reads), while the single seeded pass does 6 reads + 1
//! write — `dst` is touched exactly once.

use std::sync::atomic::{AtomicU8, Ordering};

/// Maximum number of sources consumed per pass over `dst` in the public
/// fold primitive ([`xor_fold_into_with`]).
pub const FOLD_WIDTH: usize = 4;

/// Maximum sources consumed by the *seeded* first pass of [`xor_many`].
/// Wider than [`FOLD_WIDTH`] because the seeded pass never reads `dst`:
/// at 8 sources plus the store stream the AVX2 loop still fits its four
/// accumulators comfortably, and one pass covers every decode shape a
/// triple-fault code produces (≤ 8 chain members).
pub const MANY_FOLD_WIDTH: usize = 8;

/// An XOR kernel implementation, ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum XorKernel {
    /// Word-wide (`u64`) loop; the differential oracle. Always available.
    Scalar,
    /// SSE2 128-bit lanes (baseline on `x86_64`).
    Sse2,
    /// AVX2 256-bit lanes.
    Avx2,
}

impl XorKernel {
    /// Stable lowercase name, recorded in bench snapshots (`machine.simd`).
    pub fn name(self) -> &'static str {
        match self {
            XorKernel::Scalar => "scalar",
            XorKernel::Sse2 => "sse2",
            XorKernel::Avx2 => "avx2",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(XorKernel::Scalar),
            "sse2" => Some(XorKernel::Sse2),
            "avx2" => Some(XorKernel::Avx2),
            _ => None,
        }
    }
}

/// Best kernel the host CPU supports. Under Miri only the scalar path runs:
/// runtime feature detection and vendor intrinsics are not supported there,
/// and the point of the Miri job is the `align_to` surface of the oracle.
fn detect() -> XorKernel {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if is_x86_feature_detected!("avx2") {
            return XorKernel::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return XorKernel::Sse2;
        }
    }
    XorKernel::Scalar
}

/// Every kernel the host supports, weakest first. Test suites iterate this
/// so a run on non-x86 hardware still exercises (trivially) the full matrix.
pub fn supported_kernels() -> Vec<XorKernel> {
    let best = detect();
    let mut out = vec![XorKernel::Scalar];
    if best >= XorKernel::Sse2 {
        out.push(XorKernel::Sse2);
    }
    if best >= XorKernel::Avx2 {
        out.push(XorKernel::Avx2);
    }
    out
}

// 0 = not yet resolved; otherwise kernel discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The kernel used by [`xor_into`] / [`xor_many`] / [`is_zero`]. Resolved
/// once: hardware detection, optionally downgraded by `FBF_XOR_KERNEL`
/// (`scalar` | `sse2` | `avx2`). An override *above* what the CPU supports
/// is clamped to the detected best, so the env var can never select an
/// unsupported instruction set.
pub fn active_kernel() -> XorKernel {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => return XorKernel::Scalar,
        2 => return XorKernel::Sse2,
        3 => return XorKernel::Avx2,
        _ => {}
    }
    let best = detect();
    let chosen = match std::env::var("FBF_XOR_KERNEL") {
        Ok(s) => match XorKernel::from_name(s.trim()) {
            Some(k) => k.min(best),
            None => best,
        },
        Err(_) => best,
    };
    let tag = match chosen {
        XorKernel::Scalar => 1,
        XorKernel::Sse2 => 2,
        XorKernel::Avx2 => 3,
    };
    ACTIVE.store(tag, Ordering::Relaxed);
    chosen
}

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    xor_into_with(active_kernel(), dst, src);
}

/// `dst = XOR(srcs)`; no sources zeroes `dst`. Panics if any source's
/// length differs from `dst`'s. SIMD kernels fold up to [`FOLD_WIDTH`]
/// sources per pass over `dst`; the first pass seeds `dst` directly from
/// the sources without reading it.
pub fn xor_many(dst: &mut [u8], srcs: &[&[u8]]) {
    xor_many_with(active_kernel(), dst, srcs);
}

/// Returns true if the buffer is all zero — handy for parity-consistency
/// checks (`XOR of a whole chain must be zero`).
pub fn is_zero(buf: &[u8]) -> bool {
    is_zero_with(active_kernel(), buf)
}

/// [`xor_into`] on an explicit kernel. Callers must only pass kernels from
/// [`supported_kernels`].
pub fn xor_into_with(kernel: XorKernel, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    match kernel {
        XorKernel::Scalar => scalar::xor_into(dst, src),
        // SAFETY: callers only pass kernels reported by supported_kernels(),
        // so the corresponding target feature is present on this CPU.
        #[cfg(target_arch = "x86_64")]
        XorKernel::Sse2 => unsafe { sse2::fold(dst, &[src], false) },
        #[cfg(target_arch = "x86_64")]
        XorKernel::Avx2 => unsafe { avx2::fold(dst, &[src], false) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::xor_into(dst, src),
    }
}

/// [`xor_many`] on an explicit kernel. The scalar path is the plain
/// copy-then-fold-one-at-a-time oracle; SIMD paths fold up to
/// [`MANY_FOLD_WIDTH`] sources in the seeded first pass (so the paper's
/// 6-source decode shape touches `dst` exactly once), then up to
/// [`FOLD_WIDTH`] per continuation pass. A zero-source call zeroes `dst`
/// on every path.
pub fn xor_many_with(kernel: XorKernel, dst: &mut [u8], srcs: &[&[u8]]) {
    for s in srcs {
        assert_eq!(dst.len(), s.len(), "xor_many length mismatch");
    }
    if srcs.is_empty() {
        // The fold path below never touches dst for an empty group; zero it
        // explicitly so every dispatch path honours the documented contract.
        dst.fill(0);
        return;
    }
    match kernel {
        XorKernel::Scalar => scalar::xor_many(dst, srcs),
        _ => {
            let lead = srcs.len().min(MANY_FOLD_WIDTH);
            let (first, rest) = srcs.split_at(lead);
            fold_dispatch(kernel, dst, first, true);
            for group in rest.chunks(FOLD_WIDTH) {
                fold_dispatch(kernel, dst, group, false);
            }
        }
    }
}

/// One fold pass: `dst = XOR(group)` when `seed` is true (dst is not read),
/// else `dst ^= XOR(group)`. At most [`FOLD_WIDTH`] sources per call; this
/// is the primitive the `xor_fold4_6x32k` bench times. Panics on length
/// mismatch, more than [`FOLD_WIDTH`] sources, or (`seed` only) an empty
/// group.
pub fn xor_fold_into_with(kernel: XorKernel, dst: &mut [u8], group: &[&[u8]], seed: bool) {
    assert!(group.len() <= FOLD_WIDTH, "fold group too wide");
    assert!(
        !(seed && group.is_empty()),
        "cannot seed from an empty group"
    );
    for s in group {
        assert_eq!(dst.len(), s.len(), "xor_fold length mismatch");
    }
    fold_dispatch(kernel, dst, group, seed)
}

/// Width-unchecked fold dispatch. The SIMD fold loops accept any group
/// length; only the public [`xor_fold_into_with`] entry enforces the
/// [`FOLD_WIDTH`] contract. [`xor_many_with`] calls this directly so its
/// seeded first pass can run [`MANY_FOLD_WIDTH`] wide.
fn fold_dispatch(kernel: XorKernel, dst: &mut [u8], group: &[&[u8]], seed: bool) {
    match kernel {
        XorKernel::Scalar => fold_bytes(dst, group, seed),
        // SAFETY: as in xor_into_with — kernel implies the target feature.
        #[cfg(target_arch = "x86_64")]
        XorKernel::Sse2 => unsafe { sse2::fold(dst, group, seed) },
        #[cfg(target_arch = "x86_64")]
        XorKernel::Avx2 => unsafe { avx2::fold(dst, group, seed) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => fold_bytes(dst, group, seed),
    }
}

/// [`is_zero`] on an explicit kernel.
pub fn is_zero_with(kernel: XorKernel, buf: &[u8]) -> bool {
    match kernel {
        XorKernel::Scalar => scalar::is_zero(buf),
        // SAFETY: as in xor_into_with.
        #[cfg(target_arch = "x86_64")]
        XorKernel::Sse2 => unsafe { sse2::is_zero(buf) },
        #[cfg(target_arch = "x86_64")]
        XorKernel::Avx2 => unsafe { avx2::is_zero(buf) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::is_zero(buf),
    }
}

/// Byte-wise fold used for SIMD tails and as the scalar fold reference.
/// Bounds checks dominate here, which is fine: it only ever sees fewer than
/// one SIMD stride's worth of bytes on the hot paths.
fn fold_bytes(dst: &mut [u8], group: &[&[u8]], seed: bool) {
    for i in 0..dst.len() {
        let mut v = if seed { 0 } else { dst[i] };
        for s in group {
            v ^= s[i];
        }
        dst[i] = v;
    }
}

/// The original word-wide kernels, kept verbatim as the differential oracle.
/// `u64` words in the aligned middle of the buffers, bytes at the unaligned
/// edges — the standard allocation-free way to get LLVM to autovectorise.
pub mod scalar {
    /// `dst ^= src`, element-wise. Lengths already checked by the caller.
    pub fn xor_into(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
        // Split both buffers at u64 alignment. align_to_mut is safe to
        // *call*; reinterpreting u8 as u64 is valid for any bit pattern.
        let (d_head, d_mid, d_tail) = unsafe { dst.align_to_mut::<u64>() };
        let head_len = d_head.len();
        let mid_bytes = d_mid.len() * 8;
        let (s_head, s_rest) = src.split_at(head_len);
        let (s_mid, s_tail) = s_rest.split_at(mid_bytes);

        for (d, s) in d_head.iter_mut().zip(s_head) {
            *d ^= s;
        }
        // The source's middle section need not be aligned; read it per-word.
        for (i, d) in d_mid.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&s_mid[i * 8..i * 8 + 8]);
            *d ^= u64::from_ne_bytes(w);
        }
        for (d, s) in d_tail.iter_mut().zip(s_tail) {
            *d ^= s;
        }
    }

    /// `dst = XOR(srcs)`. Seeds `dst` by copying the first source (one
    /// `memcpy` instead of a `fill(0)` pass plus an extra XOR pass), then
    /// folds the rest in one at a time; no sources zeroes `dst`.
    pub fn xor_many(dst: &mut [u8], srcs: &[&[u8]]) {
        let Some((first, rest)) = srcs.split_first() else {
            dst.fill(0);
            return;
        };
        assert_eq!(dst.len(), first.len(), "xor_many length mismatch");
        dst.copy_from_slice(first);
        for s in rest {
            xor_into(dst, s);
        }
    }

    /// Word-wise all-zero scan.
    pub fn is_zero(buf: &[u8]) -> bool {
        let (head, mid, tail) = unsafe { buf.align_to::<u64>() };
        head.iter().all(|&b| b == 0) && mid.iter().all(|&w| w == 0) && tail.iter().all(|&b| b == 0)
    }
}

/// Collect the sub-`stride` tails of a fold group into a fixed array so the
/// byte fallback can run without allocating. Returns the tail slices.
#[cfg(target_arch = "x86_64")]
fn group_tails<'a>(group: &[&'a [u8]], from: usize) -> ([&'a [u8]; MANY_FOLD_WIDTH], usize) {
    let mut tails: [&[u8]; MANY_FOLD_WIDTH] = [&[]; MANY_FOLD_WIDTH];
    for (t, s) in tails.iter_mut().zip(group) {
        *t = &s[from..];
    }
    (tails, group.len())
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::{fold_bytes, group_tails};
    use std::arch::x86_64::*;

    /// `dst (^)= XOR(group)` with 4×16-byte unrolled lanes. `seed` skips the
    /// initial load of `dst`, seeding the accumulators from the first source.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports SSE2 (guaranteed on `x86_64`, but
    /// dispatch still checks). All loads/stores are unaligned-safe
    /// (`loadu`/`storeu`) and stay within the checked slice bounds.
    #[target_feature(enable = "sse2")]
    pub unsafe fn fold(dst: &mut [u8], group: &[&[u8]], seed: bool) {
        const STRIDE: usize = 64;
        let len = dst.len();
        let main = len - len % STRIDE;
        let dp = dst.as_mut_ptr();
        let mut off = 0;
        while off < main {
            let (mut v0, mut v1, mut v2, mut v3);
            let rest: &[&[u8]];
            if seed {
                let sp = group[0].as_ptr().add(off);
                v0 = _mm_loadu_si128(sp as *const __m128i);
                v1 = _mm_loadu_si128(sp.add(16) as *const __m128i);
                v2 = _mm_loadu_si128(sp.add(32) as *const __m128i);
                v3 = _mm_loadu_si128(sp.add(48) as *const __m128i);
                rest = &group[1..];
            } else {
                v0 = _mm_loadu_si128(dp.add(off) as *const __m128i);
                v1 = _mm_loadu_si128(dp.add(off + 16) as *const __m128i);
                v2 = _mm_loadu_si128(dp.add(off + 32) as *const __m128i);
                v3 = _mm_loadu_si128(dp.add(off + 48) as *const __m128i);
                rest = group;
            }
            for s in rest {
                let sp = s.as_ptr().add(off);
                v0 = _mm_xor_si128(v0, _mm_loadu_si128(sp as *const __m128i));
                v1 = _mm_xor_si128(v1, _mm_loadu_si128(sp.add(16) as *const __m128i));
                v2 = _mm_xor_si128(v2, _mm_loadu_si128(sp.add(32) as *const __m128i));
                v3 = _mm_xor_si128(v3, _mm_loadu_si128(sp.add(48) as *const __m128i));
            }
            _mm_storeu_si128(dp.add(off) as *mut __m128i, v0);
            _mm_storeu_si128(dp.add(off + 16) as *mut __m128i, v1);
            _mm_storeu_si128(dp.add(off + 32) as *mut __m128i, v2);
            _mm_storeu_si128(dp.add(off + 48) as *mut __m128i, v3);
            off += STRIDE;
        }
        if main < len {
            let (tails, n) = group_tails(group, main);
            fold_bytes(&mut dst[main..], &tails[..n], seed);
        }
    }

    /// All-zero scan, 64 bytes per iteration with an early exit per block.
    ///
    /// # Safety
    /// Caller must ensure SSE2; loads are unaligned-safe and in-bounds.
    #[target_feature(enable = "sse2")]
    pub unsafe fn is_zero(buf: &[u8]) -> bool {
        const STRIDE: usize = 64;
        let len = buf.len();
        let main = len - len % STRIDE;
        let bp = buf.as_ptr();
        let mut off = 0;
        while off < main {
            let a = _mm_or_si128(
                _mm_loadu_si128(bp.add(off) as *const __m128i),
                _mm_loadu_si128(bp.add(off + 16) as *const __m128i),
            );
            let b = _mm_or_si128(
                _mm_loadu_si128(bp.add(off + 32) as *const __m128i),
                _mm_loadu_si128(bp.add(off + 48) as *const __m128i),
            );
            let acc = _mm_or_si128(a, b);
            // SSE2 has no testz; compare against zero and check the mask.
            let eq = _mm_cmpeq_epi8(acc, _mm_setzero_si128());
            if _mm_movemask_epi8(eq) != 0xFFFF {
                return false;
            }
            off += STRIDE;
        }
        buf[main..].iter().all(|&b| b == 0)
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{fold_bytes, group_tails};
    use std::arch::x86_64::*;

    /// `dst (^)= XOR(group)` with 4×32-byte unrolled lanes (128-byte
    /// stride). `seed` skips the initial load of `dst`, seeding the
    /// accumulators from the first source. Four accumulators give the
    /// out-of-order core enough independent chains to hide L2 latency
    /// across up to five concurrent streams (4 sources + dst) — with only
    /// two, the fold runs load-latency-bound well below L2 bandwidth.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 (dispatch checks via
    /// `is_x86_feature_detected!`). All loads/stores are unaligned-safe
    /// (`loadu`/`storeu`) and stay within the checked slice bounds.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fold(dst: &mut [u8], group: &[&[u8]], seed: bool) {
        const STRIDE: usize = 128;
        let len = dst.len();
        let main = len - len % STRIDE;
        let dp = dst.as_mut_ptr();
        let mut off = 0;
        while off < main {
            let (mut v0, mut v1, mut v2, mut v3);
            let rest: &[&[u8]];
            if seed {
                let sp = group[0].as_ptr().add(off);
                v0 = _mm256_loadu_si256(sp as *const __m256i);
                v1 = _mm256_loadu_si256(sp.add(32) as *const __m256i);
                v2 = _mm256_loadu_si256(sp.add(64) as *const __m256i);
                v3 = _mm256_loadu_si256(sp.add(96) as *const __m256i);
                rest = &group[1..];
            } else {
                v0 = _mm256_loadu_si256(dp.add(off) as *const __m256i);
                v1 = _mm256_loadu_si256(dp.add(off + 32) as *const __m256i);
                v2 = _mm256_loadu_si256(dp.add(off + 64) as *const __m256i);
                v3 = _mm256_loadu_si256(dp.add(off + 96) as *const __m256i);
                rest = group;
            }
            for s in rest {
                let sp = s.as_ptr().add(off);
                v0 = _mm256_xor_si256(v0, _mm256_loadu_si256(sp as *const __m256i));
                v1 = _mm256_xor_si256(v1, _mm256_loadu_si256(sp.add(32) as *const __m256i));
                v2 = _mm256_xor_si256(v2, _mm256_loadu_si256(sp.add(64) as *const __m256i));
                v3 = _mm256_xor_si256(v3, _mm256_loadu_si256(sp.add(96) as *const __m256i));
            }
            _mm256_storeu_si256(dp.add(off) as *mut __m256i, v0);
            _mm256_storeu_si256(dp.add(off + 32) as *mut __m256i, v1);
            _mm256_storeu_si256(dp.add(off + 64) as *mut __m256i, v2);
            _mm256_storeu_si256(dp.add(off + 96) as *mut __m256i, v3);
            off += STRIDE;
        }
        if main < len {
            let (tails, n) = group_tails(group, main);
            fold_bytes(&mut dst[main..], &tails[..n], seed);
        }
    }

    /// All-zero scan, 128 bytes per iteration with an early exit per block.
    ///
    /// # Safety
    /// Caller must ensure AVX2; loads are unaligned-safe and in-bounds.
    #[target_feature(enable = "avx2")]
    pub unsafe fn is_zero(buf: &[u8]) -> bool {
        const STRIDE: usize = 128;
        let len = buf.len();
        let main = len - len % STRIDE;
        let bp = buf.as_ptr();
        let mut off = 0;
        while off < main {
            let a = _mm256_or_si256(
                _mm256_loadu_si256(bp.add(off) as *const __m256i),
                _mm256_loadu_si256(bp.add(off + 32) as *const __m256i),
            );
            let b = _mm256_or_si256(
                _mm256_loadu_si256(bp.add(off + 64) as *const __m256i),
                _mm256_loadu_si256(bp.add(off + 96) as *const __m256i),
            );
            let acc = _mm256_or_si256(a, b);
            if _mm256_testz_si256(acc, acc) == 0 {
                return false;
            }
            off += STRIDE;
        }
        buf[main..].iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010_1010u8; 64];
        let b = vec![0b0101_0101u8; 64];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0xFF));
    }

    #[test]
    fn xor_into_self_inverse() {
        let src: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let orig: Vec<u8> = (0..1000).map(|i| (i * 7 % 251) as u8).collect();
        let mut buf = orig.clone();
        xor_into(&mut buf, &src);
        xor_into(&mut buf, &src);
        assert_eq!(buf, orig);
    }

    #[test]
    fn xor_into_odd_lengths_all_kernels() {
        // Exercise the unaligned head/tail paths with awkward sizes, on
        // every kernel the host supports.
        for kernel in supported_kernels() {
            for len in [0, 1, 3, 7, 8, 9, 15, 17, 31, 63, 64, 65, 127, 129] {
                let a_orig: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let b: Vec<u8> = (0..len).map(|i| (i * 3 + 1) as u8).collect();
                let mut a = a_orig.clone();
                xor_into_with(kernel, &mut a, &b);
                for i in 0..len {
                    assert_eq!(a[i], a_orig[i] ^ b[i], "{kernel:?} len={len} idx={i}");
                }
            }
        }
    }

    #[test]
    fn xor_into_unaligned_offsets() {
        // Force differing alignments of dst and src.
        let backing_a = [0xABu8; 80];
        let backing_b: Vec<u8> = (0..80).map(|i| i as u8).collect();
        for kernel in supported_kernels() {
            for off_a in 0..4 {
                for off_b in 0..4 {
                    let mut a = backing_a[off_a..off_a + 64].to_vec();
                    // Copy with offset to change the underlying alignment.
                    let b = &backing_b[off_b..off_b + 64];
                    let expect: Vec<u8> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();
                    xor_into_with(kernel, &mut a, b);
                    assert_eq!(a, expect, "{kernel:?} off_a={off_a} off_b={off_b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 8];
        xor_into(&mut a, &[0u8; 9]);
    }

    #[test]
    fn xor_many_computes_parity() {
        let a = vec![1u8; 32];
        let b = vec![2u8; 32];
        let c = vec![4u8; 32];
        for kernel in supported_kernels() {
            let mut out = vec![0xFFu8; 32];
            xor_many_with(kernel, &mut out, &[&a, &b, &c]);
            assert!(out.iter().all(|&x| x == 7), "{kernel:?}");
        }
    }

    #[test]
    fn xor_many_zero_sources_zeroes_dst_on_every_kernel() {
        // Pinned: a zero-source decode must zero dst on every dispatch
        // path, not just the scalar one (the fold path never reads dst for
        // an empty group, so this is an explicit edge).
        for kernel in supported_kernels() {
            let mut out = vec![0xEEu8; 97];
            xor_many_with(kernel, &mut out, &[]);
            assert!(out.iter().all(|&x| x == 0), "{kernel:?}");
        }
    }

    #[test]
    fn xor_many_matches_scalar_for_six_source_decode() {
        // The paper's decode shape: 6 sources, one destination.
        let srcs: Vec<Vec<u8>> = (0..6u8)
            .map(|k| (0..1000).map(|i| (i as u8).wrapping_mul(k + 3)).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|v| v.as_slice()).collect();
        let mut want = vec![0u8; 1000];
        scalar::xor_many(&mut want, &refs);
        for kernel in supported_kernels() {
            let mut got = vec![0x5Au8; 1000];
            xor_many_with(kernel, &mut got, &refs);
            assert_eq!(got, want, "{kernel:?}");
        }
    }

    #[test]
    fn fold_seed_and_accumulate_match_reference() {
        let srcs: Vec<Vec<u8>> = (0..4u8)
            .map(|k| (0..130).map(|i| (i as u8) ^ (k * 17)).collect())
            .collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|v| v.as_slice()).collect();
        for kernel in supported_kernels() {
            for n in 1..=4usize {
                // seed: dst = XOR(group)
                let mut got = vec![0xA5u8; 130];
                xor_fold_into_with(kernel, &mut got, &refs[..n], true);
                let mut want = vec![0u8; 130];
                scalar::xor_many(&mut want, &refs[..n]);
                assert_eq!(got, want, "{kernel:?} seed n={n}");
                // accumulate: dst ^= XOR(group)
                let base: Vec<u8> = (0..130).map(|i| (i * 13 % 251) as u8).collect();
                let mut got = base.clone();
                xor_fold_into_with(kernel, &mut got, &refs[..n], false);
                let want2: Vec<u8> = base.iter().zip(&want).map(|(a, b)| a ^ b).collect();
                assert_eq!(got, want2, "{kernel:?} acc n={n}");
            }
        }
    }

    #[test]
    fn is_zero_detects_on_every_kernel() {
        for kernel in supported_kernels() {
            assert!(is_zero_with(kernel, &[0u8; 16]), "{kernel:?}");
            assert!(!is_zero_with(kernel, &[0, 0, 1, 0]), "{kernel:?}");
            assert!(is_zero_with(kernel, &[]), "{kernel:?}");
            assert!(is_zero_with(kernel, &[0u8; 333]), "{kernel:?}");
            let mut buf = vec![0u8; 333];
            for poison in [0, 63, 64, 150, 332] {
                buf[poison] = 1;
                assert!(!is_zero_with(kernel, &buf), "{kernel:?} poison={poison}");
                buf[poison] = 0;
            }
        }
    }

    #[test]
    fn active_kernel_is_supported() {
        assert!(supported_kernels().contains(&active_kernel()));
    }
}
