//! Word-wide XOR kernels.
//!
//! Everything in a 3DFT code — encoding, chain repair, full decode — reduces
//! to XOR-ing chunk buffers together. These kernels process `u64` words in
//! the aligned middle of the buffers and bytes at the unaligned edges, which
//! is the standard allocation-free way to get the compiler to vectorise the
//! loop (cf. the Rust Performance Book's advice to prefer simple word loops
//! that LLVM can autovectorise over hand-rolled SIMD).

/// `dst ^= src`, element-wise. Panics if lengths differ.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    // Split both buffers at u64 alignment. align_to_mut is safe to *call*;
    // reinterpreting u8 as u64 is valid for any bit pattern.
    let (d_head, d_mid, d_tail) = unsafe { dst.align_to_mut::<u64>() };
    let head_len = d_head.len();
    let mid_bytes = d_mid.len() * 8;
    let (s_head, s_rest) = src.split_at(head_len);
    let (s_mid, s_tail) = s_rest.split_at(mid_bytes);

    for (d, s) in d_head.iter_mut().zip(s_head) {
        *d ^= s;
    }
    // The source's middle section need not be aligned; read it per-word.
    for (i, d) in d_mid.iter_mut().enumerate() {
        let mut w = [0u8; 8];
        w.copy_from_slice(&s_mid[i * 8..i * 8 + 8]);
        *d ^= u64::from_ne_bytes(w);
    }
    for (d, s) in d_tail.iter_mut().zip(s_tail) {
        *d ^= s;
    }
}

/// `dst = XOR(srcs)`. Seeds `dst` by copying the first source (one
/// `memcpy` instead of a `fill(0)` pass plus an extra XOR pass), then
/// folds the rest in; no sources zeroes `dst`. Panics if any source's
/// length differs from `dst`'s.
pub fn xor_many(dst: &mut [u8], srcs: &[&[u8]]) {
    let Some((first, rest)) = srcs.split_first() else {
        dst.fill(0);
        return;
    };
    assert_eq!(dst.len(), first.len(), "xor_many length mismatch");
    dst.copy_from_slice(first);
    for s in rest {
        xor_into(dst, s);
    }
}

/// Returns true if the buffer is all zero — handy for parity-consistency
/// checks (`XOR of a whole chain must be zero`). Word-wise over the
/// aligned middle, like [`xor_into`].
pub fn is_zero(buf: &[u8]) -> bool {
    let (head, mid, tail) = unsafe { buf.align_to::<u64>() };
    head.iter().all(|&b| b == 0) && mid.iter().all(|&w| w == 0) && tail.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut a = vec![0b1010_1010u8; 64];
        let b = vec![0b0101_0101u8; 64];
        xor_into(&mut a, &b);
        assert!(a.iter().all(|&x| x == 0xFF));
    }

    #[test]
    fn xor_into_self_inverse() {
        let src: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let orig: Vec<u8> = (0..1000).map(|i| (i * 7 % 251) as u8).collect();
        let mut buf = orig.clone();
        xor_into(&mut buf, &src);
        xor_into(&mut buf, &src);
        assert_eq!(buf, orig);
    }

    #[test]
    fn xor_into_odd_lengths() {
        // Exercise the unaligned head/tail paths with awkward sizes.
        for len in [0, 1, 3, 7, 8, 9, 15, 17, 31, 63, 65] {
            let a_orig: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 3 + 1) as u8).collect();
            let mut a = a_orig.clone();
            xor_into(&mut a, &b);
            for i in 0..len {
                assert_eq!(a[i], a_orig[i] ^ b[i], "len={len} idx={i}");
            }
        }
    }

    #[test]
    fn xor_into_unaligned_offsets() {
        // Force differing alignments of dst and src.
        let backing_a = [0xABu8; 80];
        let backing_b: Vec<u8> = (0..80).map(|i| i as u8).collect();
        for off_a in 0..4 {
            for off_b in 0..4 {
                let mut a = backing_a[off_a..off_a + 64].to_vec();
                // Copy with offset to change the underlying alignment of the slice start.
                let b = &backing_b[off_b..off_b + 64];
                let expect: Vec<u8> = a.iter().zip(b).map(|(x, y)| x ^ y).collect();
                xor_into(&mut a, b);
                assert_eq!(a, expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 8];
        xor_into(&mut a, &[0u8; 9]);
    }

    #[test]
    fn xor_many_computes_parity() {
        let a = vec![1u8; 32];
        let b = vec![2u8; 32];
        let c = vec![4u8; 32];
        let mut out = vec![0xFFu8; 32];
        xor_many(&mut out, &[&a, &b, &c]);
        assert!(out.iter().all(|&x| x == 7));
    }

    #[test]
    fn is_zero_detects() {
        assert!(is_zero(&[0u8; 16]));
        assert!(!is_zero(&[0, 0, 1, 0]));
        assert!(is_zero(&[]));
    }
}
