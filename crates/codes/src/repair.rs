//! Repair options: which chains can rebuild a chunk and at what read cost.
//!
//! Partial-stripe recovery rebuilds each lost chunk through *one* chain.
//! [`repair_options`] enumerates, per lost cell, every chain that covers it
//! together with the exact read set (the other cells of the chain's
//! equation). The FBF scheme generator in `fbf-recovery` picks among these
//! options to maximise read-set overlap.

use crate::chain::{ChainId, Direction};
use crate::codes::StripeCode;
use crate::layout::Cell;
use serde::{Deserialize, Serialize};

/// One way of rebuilding `target`: read every cell in `reads`, XOR them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairOption {
    /// The lost cell this option rebuilds.
    pub target: Cell,
    /// The chain used.
    pub chain: ChainId,
    /// The chain's direction (cached for convenience).
    pub direction: Direction,
    /// Cells that must be fetched: all other members of the chain's
    /// equation, parity included.
    pub reads: Vec<Cell>,
}

impl RepairOption {
    /// Read cost of this option in chunks.
    #[inline]
    pub fn cost(&self) -> usize {
        self.reads.len()
    }
}

/// All repair options for `target`, cheapest first; ties broken by
/// direction order (H, D, A) for determinism.
///
/// Options whose read set includes another *lost* cell are unusable for
/// single-pass repair; pass the full lost set to [`usable_repair_options`]
/// to filter them out.
pub fn repair_options(code: &StripeCode, target: Cell) -> Vec<RepairOption> {
    let mut opts: Vec<RepairOption> = code
        .chains_of(target)
        .iter()
        .map(|&id| {
            let chain = code.chain(id);
            RepairOption {
                target,
                chain: id,
                direction: chain.direction,
                reads: chain.repair_reads(target),
            }
        })
        .collect();
    opts.sort_by_key(|o| (o.cost(), o.direction));
    opts
}

/// Repair options for `target` that do not depend on any other cell of
/// `lost` (so the repairs of a partial-stripe error can run independently).
pub fn usable_repair_options(code: &StripeCode, target: Cell, lost: &[Cell]) -> Vec<RepairOption> {
    repair_options(code, target)
        .into_iter()
        .filter(|o| !o.reads.iter().any(|c| lost.contains(c) && *c != o.target))
        .collect()
}

/// For each direction, the cheapest usable option (if any). This is the menu
/// the FBF direction-cycling scheme picks from.
///
/// Winners are selected on `(cost, chain order)` without materialising any
/// read set — an equation of `n` members always costs `n` reads no matter
/// which of its cells is the target, so the whole scan is compare-only and
/// at most three `reads` vectors are ever allocated. The scheme planner
/// calls this once per still-lost candidate per round, which made the
/// allocating enumerate-sort-filter formulation the hottest part of
/// campaign planning.
pub fn best_per_direction(
    code: &StripeCode,
    target: Cell,
    lost: &[Cell],
) -> [Option<RepairOption>; 3] {
    let mut win: [Option<(usize, ChainId)>; 3] = [None, None, None];
    for &id in code.chains_of(target) {
        let chain = code.chain(id);
        // Usable iff no *other* lost cell sits on the equation (it would be
        // part of the read set).
        if lost.iter().any(|&c| c != target && chain.covers(c)) {
            continue;
        }
        let cost = chain.len();
        let slot = &mut win[chain.direction.index()];
        let better = match slot {
            Some((cur, _)) => cost < *cur,
            None => true,
        };
        if better {
            *slot = Some((cost, id));
        }
    }
    win.map(|w| {
        w.map(|(_, id)| {
            let chain = code.chain(id);
            RepairOption {
                target,
                chain: id,
                direction: chain.direction,
                reads: chain.repair_reads(target),
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSpec;

    #[test]
    fn every_data_cell_has_options() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 7).unwrap();
            for cell in code.data_cells() {
                let opts = repair_options(&code, cell);
                assert!(!opts.is_empty(), "{spec} {cell}");
                // Sorted by cost.
                for w in opts.windows(2) {
                    assert!(w[0].cost() <= w[1].cost());
                }
            }
        }
    }

    #[test]
    fn reads_never_include_target() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        for cell in code.data_cells() {
            for opt in repair_options(&code, cell) {
                assert!(!opt.reads.contains(&cell));
            }
        }
    }

    #[test]
    fn usable_options_avoid_lost_cells() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        // Lose the whole top of column 0 — options reading other lost cells
        // must be filtered.
        let lost: Vec<Cell> = (0..4).map(|r| Cell::new(r, 0)).collect();
        for &target in &lost {
            for opt in usable_repair_options(&code, target, &lost) {
                for r in &opt.reads {
                    assert!(!lost.contains(r), "{target} option reads lost cell {r}");
                }
            }
        }
    }

    #[test]
    fn horizontal_always_usable_for_single_column_errors() {
        // Horizontal chains touch each column once, so a one-column error
        // never blocks them.
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 7).unwrap();
            let lost: Vec<Cell> = (0..code.rows() - 1).map(|r| Cell::new(r, 0)).collect();
            for &target in &lost {
                let best = best_per_direction(&code, target, &lost);
                assert!(
                    best[Direction::Horizontal.index()].is_some(),
                    "{spec} {target} lacks horizontal repair"
                );
            }
        }
    }

    #[test]
    fn star_diagonal_repair_includes_adjuster_line() {
        let code = StripeCode::build(CodeSpec::Star, 5).unwrap();
        // A data cell not on the adjuster line.
        let target = Cell::new(0, 0); // (r+j)%5 == 0 != 4
        let opts = repair_options(&code, target);
        let diag = opts
            .iter()
            .find(|o| o.direction == Direction::Diagonal)
            .expect("diagonal option exists");
        // Adjuster line cells: (r+j)%5==4 → (0,4),(1,3),(2,2),(3,1)
        for a in [
            Cell::new(0, 4),
            Cell::new(1, 3),
            Cell::new(2, 2),
            Cell::new(3, 1),
        ] {
            assert!(diag.reads.contains(&a), "missing adjuster cell {a}");
        }
    }
}
