//! Stripe layouts: the `rows × cols` grid of chunks and what each cell holds.
//!
//! A *stripe* of a 3DFT array code is a small two-dimensional grid: `cols`
//! is the number of disks (`n`), `rows` is the number of chunks each disk
//! contributes to the stripe (`p - 1` for every code in this crate). The FBF
//! paper addresses chunks as `C(row, col)` — [`Cell`] mirrors that.

use serde::{Deserialize, Serialize};

/// Address of a chunk inside one stripe, `C(row, col)` in the paper's
/// notation. `col` is the disk index within the stripe's column permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// Row within the stripe, `0..rows`.
    pub row: u16,
    /// Column (disk) within the stripe, `0..cols`.
    pub col: u16,
}

impl Cell {
    /// Create a cell from `usize` coordinates (panics on overflow, which is
    /// impossible for realistic primes).
    #[inline]
    pub fn new(row: usize, col: usize) -> Self {
        Cell {
            row: u16::try_from(row).expect("row fits u16"),
            col: u16::try_from(col).expect("col fits u16"),
        }
    }

    /// Row as `usize` for indexing.
    #[inline]
    pub fn r(&self) -> usize {
        self.row as usize
    }

    /// Column as `usize` for indexing.
    #[inline]
    pub fn c(&self) -> usize {
        self.col as usize
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C({},{})", self.row, self.col)
    }
}

/// Globally unique chunk address: a cell within a numbered stripe.
///
/// This is the key type cached by the buffer cache and addressed by the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId {
    /// Stripe number within the array.
    pub stripe: u32,
    /// Cell within the stripe.
    pub cell: Cell,
}

impl ChunkId {
    /// Construct a chunk id.
    #[inline]
    pub fn new(stripe: u32, cell: Cell) -> Self {
        ChunkId { stripe, cell }
    }
}

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}:{}", self.stripe, self.cell)
    }
}

/// What a cell of the layout stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Application data.
    Data,
    /// Parity belonging to the chain family identified by the direction index
    /// (0 = horizontal, 1 = diagonal, 2 = anti-diagonal / second diagonal).
    Parity(u8),
    /// Cell unused by the code (kept for codes whose grids have holes; none
    /// of the four shipped codes use it, but decoders treat it as zero).
    Unused,
}

impl CellKind {
    /// Is this a data cell?
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self, CellKind::Data)
    }

    /// Is this a parity cell (of any direction)?
    #[inline]
    pub fn is_parity(&self) -> bool {
        matches!(self, CellKind::Parity(_))
    }
}

/// The shape of one stripe: grid dimensions plus per-cell kinds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    rows: usize,
    cols: usize,
    /// Row-major cell kinds, `kinds[row * cols + col]`.
    kinds: Vec<CellKind>,
}

impl Layout {
    /// Create a layout with every cell initialised to [`CellKind::Data`].
    pub fn all_data(rows: usize, cols: usize) -> Self {
        Layout {
            rows,
            cols,
            kinds: vec![CellKind::Data; rows * cols],
        }
    }

    /// Number of rows (`p - 1` for the shipped codes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns, i.e. disks (`n`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells in the stripe.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` when the layout has no cells (degenerate, never built by the
    /// shipped code constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Is the cell inside the grid?
    #[inline]
    pub fn contains(&self, cell: Cell) -> bool {
        cell.r() < self.rows && cell.c() < self.cols
    }

    /// Row-major linear index of a cell; the canonical stripe-buffer order.
    #[inline]
    pub fn index_of(&self, cell: Cell) -> usize {
        debug_assert!(
            self.contains(cell),
            "cell {cell} outside {}x{}",
            self.rows,
            self.cols
        );
        cell.r() * self.cols + cell.c()
    }

    /// Inverse of [`Layout::index_of`].
    #[inline]
    pub fn cell_at(&self, index: usize) -> Cell {
        debug_assert!(index < self.kinds.len());
        Cell::new(index / self.cols, index % self.cols)
    }

    /// Kind of the given cell.
    #[inline]
    pub fn kind(&self, cell: Cell) -> CellKind {
        self.kinds[self.index_of(cell)]
    }

    /// Set the kind of a cell (used by code constructors).
    pub fn set_kind(&mut self, cell: Cell, kind: CellKind) {
        let i = self.index_of(cell);
        self.kinds[i] = kind;
    }

    /// Iterate over all cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| Cell::new(r, c)))
    }

    /// Iterate over the data cells only.
    pub fn data_cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.cells().filter(|&c| self.kind(c).is_data())
    }

    /// Iterate over the parity cells only.
    pub fn parity_cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.cells().filter(|&c| self.kind(c).is_parity())
    }

    /// Number of data cells.
    pub fn data_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_data()).count()
    }

    /// Number of parity cells.
    pub fn parity_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_parity()).count()
    }

    /// Cells of one column, top to bottom. A column corresponds to the part
    /// of one disk covered by this stripe.
    pub fn column(&self, col: usize) -> impl Iterator<Item = Cell> + '_ {
        assert!(col < self.cols, "column {col} out of range");
        (0..self.rows).map(move |r| Cell::new(r, col))
    }

    /// Render the layout as ASCII art: `D` for data, `H`/`P1`/`P2` for the
    /// parity directions. Used by the quickstart example to reproduce the
    /// spirit of the paper's Fig. 1.
    pub fn ascii_art(&self) -> String {
        let mut out = String::with_capacity(self.len() * 3 + self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let ch = match self.kind(Cell::new(r, c)) {
                    CellKind::Data => "D ",
                    CellKind::Parity(0) => "H ",
                    CellKind::Parity(1) => "P1",
                    CellKind::Parity(_) => "P2",
                    CellKind::Unused => ". ",
                };
                out.push_str(ch);
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip_display() {
        let c = Cell::new(4, 7);
        assert_eq!(c.to_string(), "C(4,7)");
        assert_eq!(c.r(), 4);
        assert_eq!(c.c(), 7);
    }

    #[test]
    fn chunk_id_ordering_groups_by_stripe() {
        let a = ChunkId::new(0, Cell::new(5, 5));
        let b = ChunkId::new(1, Cell::new(0, 0));
        assert!(a < b, "chunk ids order by stripe first");
    }

    #[test]
    fn layout_index_roundtrip() {
        let l = Layout::all_data(6, 8);
        for cell in l.cells() {
            assert_eq!(l.cell_at(l.index_of(cell)), cell);
        }
        assert_eq!(l.len(), 48);
    }

    #[test]
    fn set_kind_and_counts() {
        let mut l = Layout::all_data(4, 6);
        l.set_kind(Cell::new(0, 5), CellKind::Parity(0));
        l.set_kind(Cell::new(1, 5), CellKind::Parity(1));
        assert_eq!(l.parity_count(), 2);
        assert_eq!(l.data_count(), 22);
        assert!(l.kind(Cell::new(0, 5)).is_parity());
        assert!(!l.kind(Cell::new(0, 0)).is_parity());
    }

    #[test]
    fn column_iterates_rows() {
        let l = Layout::all_data(4, 6);
        let col: Vec<Cell> = l.column(2).collect();
        assert_eq!(col.len(), 4);
        assert!(col.iter().all(|c| c.c() == 2));
        assert_eq!(col[0].r(), 0);
        assert_eq!(col[3].r(), 3);
    }

    #[test]
    fn ascii_art_dimensions() {
        let l = Layout::all_data(3, 4);
        let art = l.ascii_art();
        assert_eq!(art.lines().count(), 3);
    }
}
