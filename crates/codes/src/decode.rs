//! Erasure decoding: peeling first, GF(2) elimination as fallback.
//!
//! The decoder works on an *erasure set* — a list of cells whose payloads
//! are unknown — and restores them in place:
//!
//! 1. **Peeling.** Repeatedly find a chain whose equation contains exactly
//!    one erased cell; that cell is the XOR of the chain's other cells.
//!    Peeling is what real reconstruction does and is all the partial-stripe
//!    scenarios of the FBF paper need (errors confined to a single column).
//! 2. **Gaussian elimination over GF(2).** If peeling stalls (some whole-
//!    column erasure combinations need it), set up the linear system of all
//!    chain equations restricted to the remaining unknowns and solve it.
//!    Each unknown is a bit-position in `u64` words, so elimination is
//!    word-parallel.
//!
//! Returns [`CodeError::Unrecoverable`] when the system is singular, i.e.
//! the pattern exceeds the code's correction capability.

use crate::codes::StripeCode;
use crate::hash::{FxHashMap, FxHashSet};
use crate::layout::Cell;
use crate::stripe::Stripe;
use crate::xor::xor_into;
use crate::{CodeError, Result};

/// Outcome details of a successful decode, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeReport {
    /// Cells recovered by the peeling phase, in recovery order.
    pub peeled: Vec<Cell>,
    /// Cells recovered by Gaussian elimination.
    pub eliminated: Vec<Cell>,
}

impl DecodeReport {
    /// Total recovered cells.
    pub fn total(&self) -> usize {
        self.peeled.len() + self.eliminated.len()
    }
}

/// Restore the `erased` cells of `stripe` in place.
///
/// The caller must have zeroed or otherwise invalidated the erased cells'
/// payloads is *not* required — they are recomputed from scratch and
/// overwritten.
pub fn decode(code: &StripeCode, stripe: &mut Stripe, erased: &[Cell]) -> Result<DecodeReport> {
    for &c in erased {
        if !code.layout().contains(c) {
            return Err(CodeError::OutOfBounds(c));
        }
    }
    let mut unknown: FxHashSet<Cell> = erased.iter().copied().collect();
    let mut report = DecodeReport {
        peeled: Vec::new(),
        eliminated: Vec::new(),
    };

    // Phase 1: peeling.
    let mut progress = true;
    while progress && !unknown.is_empty() {
        progress = false;
        for chain in code.chains() {
            let mut missing: Option<Cell> = None;
            let mut count = 0;
            for cell in chain.all_cells() {
                if unknown.contains(&cell) {
                    count += 1;
                    missing = Some(cell);
                    if count > 1 {
                        break;
                    }
                }
            }
            if count == 1 {
                let target = missing.expect("count==1 implies a cell");
                let mut acc = vec![0u8; stripe.chunk_size()];
                for cell in chain.all_cells() {
                    if cell != target {
                        xor_into(&mut acc, stripe.get(code.layout(), cell));
                    }
                }
                stripe.set(code.layout(), target, bytes::Bytes::from(acc));
                unknown.remove(&target);
                report.peeled.push(target);
                progress = true;
            }
        }
    }

    if unknown.is_empty() {
        return Ok(report);
    }

    // Phase 2: GF(2) elimination over the remaining unknowns.
    let recovered = eliminate(code, stripe, &unknown)?;
    for (cell, buf) in recovered {
        stripe.set(code.layout(), cell, buf);
        report.eliminated.push(cell);
    }
    Ok(report)
}

/// Solve for all cells in `unknown` simultaneously via GF(2) elimination.
#[allow(clippy::needless_range_loop)] // indices address several arrays at once
fn eliminate(
    code: &StripeCode,
    stripe: &Stripe,
    unknown: &FxHashSet<Cell>,
) -> Result<Vec<(Cell, crate::ChunkBuf)>> {
    let unknowns: Vec<Cell> = {
        let mut v: Vec<Cell> = unknown.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let col_of: FxHashMap<Cell, usize> =
        unknowns.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let nvars = unknowns.len();
    let words = nvars.div_ceil(64);

    // Each equation: coefficient bitset over unknowns + RHS payload
    // (XOR of the chain's known cells).
    struct Row {
        coeffs: Vec<u64>,
        rhs: Vec<u8>,
    }
    let mut rows: Vec<Row> = Vec::new();
    for chain in code.chains() {
        let mut coeffs = vec![0u64; words];
        let mut rhs = vec![0u8; stripe.chunk_size()];
        let mut touches = false;
        for cell in chain.all_cells() {
            if let Some(&i) = col_of.get(&cell) {
                coeffs[i / 64] ^= 1u64 << (i % 64);
                touches = true;
            } else {
                xor_into(&mut rhs, stripe.get(code.layout(), cell));
            }
        }
        if touches {
            rows.push(Row { coeffs, rhs });
        }
    }

    // Forward elimination with partial pivoting by leading variable.
    let mut pivot_rows: Vec<Option<usize>> = vec![None; nvars];
    let mut used = vec![false; rows.len()];
    for var in 0..nvars {
        let bit = |r: &Row| (r.coeffs[var / 64] >> (var % 64)) & 1 == 1;
        let Some(pivot) = (0..rows.len()).find(|&i| !used[i] && bit(&rows[i])) else {
            continue;
        };
        used[pivot] = true;
        pivot_rows[var] = Some(pivot);
        // Clear this variable from every other row.
        let (pc, pr) = (rows[pivot].coeffs.clone(), rows[pivot].rhs.clone());
        for i in 0..rows.len() {
            if i != pivot && bit(&rows[i]) {
                for (a, b) in rows[i].coeffs.iter_mut().zip(&pc) {
                    *a ^= b;
                }
                xor_into(&mut rows[i].rhs, &pr);
            }
        }
    }

    let unresolved = pivot_rows.iter().filter(|p| p.is_none()).count();
    if unresolved > 0 {
        return Err(CodeError::Unrecoverable { unresolved });
    }

    // Back-substitution: after full elimination each pivot row has exactly
    // its own variable left (we cleared it from all other rows), so the RHS
    // *is* the solution once every other variable in the row is removed.
    // Because we eliminated var-by-var across all rows, each pivot row may
    // still contain later variables; resolve from the last variable down.
    let mut solution: Vec<Option<crate::ChunkBuf>> = vec![None; nvars];
    for var in (0..nvars).rev() {
        let row = &rows[pivot_rows[var].expect("checked above")];
        let mut val = row.rhs.clone();
        for v2 in var + 1..nvars {
            if (row.coeffs[v2 / 64] >> (v2 % 64)) & 1 == 1 {
                let s = solution[v2].as_ref().expect("resolved in reverse order");
                xor_into(&mut val, s);
            }
        }
        solution[var] = Some(bytes::Bytes::from(val));
    }

    Ok(unknowns
        .into_iter()
        .zip(solution.into_iter().map(|s| s.expect("all solved")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSpec;
    use crate::encode::encode;

    fn encoded(spec: CodeSpec, p: usize) -> (StripeCode, Stripe) {
        let code = StripeCode::build(spec, p).unwrap();
        let mut stripe = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut stripe).unwrap();
        (code, stripe)
    }

    #[test]
    fn single_cell_erasures_peel() {
        for spec in CodeSpec::ALL {
            let (code, stripe) = encoded(spec, 7);
            for cell in code.layout().cells().collect::<Vec<_>>() {
                let mut s = stripe.clone();
                let orig = s.get(code.layout(), cell).clone();
                s.erase(code.layout(), cell);
                let rep = decode(&code, &mut s, &[cell]).unwrap();
                assert_eq!(rep.peeled, vec![cell], "{spec} {cell}");
                assert_eq!(s.get(code.layout(), cell), &orig, "{spec} {cell}");
            }
        }
    }

    #[test]
    fn partial_column_erasures_recover() {
        // The paper's scenario: 1..p-1 consecutive chunks lost on one disk.
        for spec in CodeSpec::ALL {
            let (code, stripe) = encoded(spec, 7);
            for col in 0..code.cols() {
                for len in 1..code.rows() {
                    let erased: Vec<Cell> = (0..len).map(|r| Cell::new(r, col)).collect();
                    let mut s = stripe.clone();
                    let originals: Vec<_> = erased
                        .iter()
                        .map(|&c| s.get(code.layout(), c).clone())
                        .collect();
                    for &c in &erased {
                        s.erase(code.layout(), c);
                    }
                    decode(&code, &mut s, &erased)
                        .unwrap_or_else(|e| panic!("{spec} col={col} len={len}: {e}"));
                    for (c, orig) in erased.iter().zip(&originals) {
                        assert_eq!(s.get(code.layout(), *c), orig, "{spec} col={col} len={len}");
                    }
                }
            }
        }
    }

    #[test]
    fn full_single_column_erasure_recovers() {
        for spec in CodeSpec::ALL {
            let (code, stripe) = encoded(spec, 5);
            for col in 0..code.cols() {
                let erased: Vec<Cell> = (0..code.rows()).map(|r| Cell::new(r, col)).collect();
                let mut s = stripe.clone();
                for &c in &erased {
                    s.erase(code.layout(), c);
                }
                decode(&code, &mut s, &erased).unwrap_or_else(|e| panic!("{spec} col={col}: {e}"));
                for &c in &erased {
                    assert_eq!(s.get(code.layout(), c), stripe.get(code.layout(), c));
                }
            }
        }
    }

    #[test]
    fn double_column_erasure_recovers() {
        for spec in CodeSpec::ALL {
            let (code, stripe) = encoded(spec, 5);
            for c1 in 0..code.cols() {
                for c2 in c1 + 1..code.cols() {
                    let erased: Vec<Cell> = (0..code.rows())
                        .flat_map(|r| [Cell::new(r, c1), Cell::new(r, c2)])
                        .collect();
                    let mut s = stripe.clone();
                    for &c in &erased {
                        s.erase(code.layout(), c);
                    }
                    decode(&code, &mut s, &erased)
                        .unwrap_or_else(|e| panic!("{spec} cols=({c1},{c2}): {e}"));
                    for &c in &erased {
                        assert_eq!(s.get(code.layout(), c), stripe.get(code.layout(), c));
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_erasure_rejected() {
        let (code, mut stripe) = encoded(CodeSpec::Tip, 5);
        let bad = Cell::new(99, 0);
        assert!(matches!(
            decode(&code, &mut stripe, &[bad]),
            Err(CodeError::OutOfBounds(_))
        ));
    }

    #[test]
    fn decode_of_nothing_is_noop() {
        let (code, mut stripe) = encoded(CodeSpec::Star, 5);
        let rep = decode(&code, &mut stripe, &[]).unwrap();
        assert_eq!(rep.total(), 0);
    }
}
