//! Fast non-cryptographic hashing for simulator-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which buys DoS
//! resistance the simulator does not need: every key it hashes is a
//! [`ChunkId`](fbf_codes::ChunkId) (8 bytes) or a small integer generated
//! by the simulator itself, never attacker-controlled input. [`FxHasher`]
//! is the rustc-style multiply-rotate hash — one rotate, one XOR and one
//! multiply per word — which benches several times faster on these tiny
//! keys and shrinks every per-access map operation in the hot loop.
//!
//! Determinism note: unlike SipHash (which is seeded per-`HashMap` via
//! `RandomState`), Fx hashing is fixed across runs and processes. Nothing
//! in this workspace may depend on map *iteration order* regardless (see
//! DESIGN.md §"Cache internals"), but fixed hashing additionally makes any
//! accidental order dependence reproducible instead of flaky.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit Fx hash (the golden-ratio-derived constant
/// used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic hasher for small fixed-size
/// keys. Do **not** use it on untrusted input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_ne_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plugs into any std collection.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast hasher — drop-in for simulator-internal
/// maps whose keys are small and trusted.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, ChunkId};
    use std::hash::{BuildHasher, Hash};

    fn key(stripe: u32, row: usize, col: usize) -> ChunkId {
        ChunkId::new(stripe, Cell::new(row, col))
    }

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let k = key(7, 3, 2);
        assert_eq!(hash_of(&k), hash_of(&k));
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential chunk ids (the common recovery access pattern) must
        // not collide wholesale.
        let mut hashes: Vec<u64> = (0..1000u32)
            .map(|i| hash_of(&key(i / 8, (i % 8) as usize, (i % 5) as usize)))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 1000, "collisions among sequential keys");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_tail() {
        // write() must consume any length, including non-multiples of 8.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let short = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]);
        // Zero-padding the tail is part of the scheme: 3 bytes and their
        // zero-padded 4-byte variant coincide, which is fine for the
        // fixed-width keys this hasher serves.
        assert_eq!(short, h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<u16> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
