//! Adjuster-free generalized triple-parity construction.
//!
//! This generator produces the "plain" codes of the repo — TIP-code, HDD1
//! and Triple-STAR — as instances of one family, in the style of RDP and its
//! triple-parity extension (the paper's reference \[15\]):
//!
//! * the stripe is a `(p-1) × (d+3)` grid over a prime `p`, with `d` data
//!   columns followed by three parity columns `H`, `P1`, `P2`;
//! * horizontal chain `r` covers the data cells of row `r`, parity in `H`;
//! * the first diagonal family has slope `s1`: line `k` covers every cell
//!   `(r, j)` of the data **and `H`** columns with `(r + s1·j) ≡ k (mod p)`,
//!   parity in `P1` — including `H` in the diagonals is the RDP trick that
//!   removes EVENODD's adjuster;
//! * the second family has slope `s2` and covers the same columns (data
//!   and `H`). An exhaustive rank audit over all column triples (see the
//!   `fault_tolerance_audit` bench) shows this variant — unlike one whose
//!   second family also covers `P1` — is fully triple-erasure decodable
//!   for every prime tested (5, 7, 11, 13).
//!
//! Because rows run only to `p-2` (the "imaginary" all-zero row `p-1` is not
//! stored), each slope family has `p` residue lines but only `p-1` parity
//! slots; the line with residue `p-1` is left unprotected, exactly as in
//! RDP. Cells on such a line simply have one fewer repair chain — this is
//! the geometric variety FBF's priorities feed on.
//!
//! **Fidelity note** (also in DESIGN.md): the original TIP/HDD1/Triple-STAR
//! papers' exact cell placements are not reproduced; what is preserved is
//! everything the FBF evaluation depends on — disk count, rows per stripe,
//! three chain directions, chain lengths of order `p`, and XOR-only coding.

use crate::chain::{Direction, ParityChain};
use crate::codes::ChainBuilder;
use crate::layout::{Cell, CellKind, Layout};

/// Parameters of one family member.
#[derive(Debug, Clone, Copy)]
pub struct FamilyParams {
    /// The prime.
    pub p: usize,
    /// Number of data columns (`p-2` for TIP/HDD1, `p-1` for Triple-STAR).
    pub data_cols: usize,
    /// Slope of the first diagonal family (always `1` for the shipped codes).
    pub slope1: usize,
    /// Slope of the second family (`p-1` ≡ -1 for TIP/Triple-STAR — an
    /// anti-diagonal; `2` for HDD1).
    pub slope2: usize,
}

impl FamilyParams {
    /// Total columns: data + 3 parity.
    pub fn cols(&self) -> usize {
        self.data_cols + 3
    }

    /// Rows per stripe.
    pub fn rows(&self) -> usize {
        self.p - 1
    }
}

/// Build the layout and chains for a family member.
pub fn generate(params: FamilyParams) -> (Layout, Vec<ParityChain>) {
    let FamilyParams {
        p,
        data_cols: d,
        slope1,
        slope2,
    } = params;
    assert!(
        slope1 % p != slope2 % p,
        "diagonal slopes must differ mod p"
    );
    assert!(
        slope1 % p != 0 && slope2 % p != 0,
        "slopes must be non-zero mod p"
    );
    assert!(d >= 1 && d <= p, "data_cols must be within [1, p]");

    let rows = params.rows();
    let cols = params.cols();
    let hcol = d;
    let p1col = d + 1;
    let p2col = d + 2;

    let mut layout = Layout::all_data(rows, cols);
    for r in 0..rows {
        layout.set_kind(Cell::new(r, hcol), CellKind::Parity(0));
        layout.set_kind(Cell::new(r, p1col), CellKind::Parity(1));
        layout.set_kind(Cell::new(r, p2col), CellKind::Parity(2));
    }

    let mut b = ChainBuilder::new();

    // Horizontal chains: one per row over the data columns.
    for r in 0..rows {
        let members: Vec<Cell> = (0..d).map(|j| Cell::new(r, j)).collect();
        b.push(Direction::Horizontal, r, members, Cell::new(r, hcol));
    }

    // First diagonal family (slope1): covers data + H columns. Line k has a
    // parity slot only for k in 0..rows; residue p-1 is the unprotected line.
    for k in 0..rows {
        let members = line_members(rows, hcol + 1, p, slope1, k);
        b.push(Direction::Diagonal, k, members, Cell::new(k, p1col));
    }

    // Second family (slope2): covers data + H columns, like the first.
    // (Covering P1 as well makes some parity-column triples singular —
    // verified by the exhaustive audit.)
    for k in 0..rows {
        let members = line_members(rows, hcol + 1, p, slope2, k);
        b.push(Direction::AntiDiagonal, k, members, Cell::new(k, p2col));
    }

    (layout, b.finish())
}

/// Cells `(r, j)` with `r < rows`, `j < col_limit` on the residue line
/// `(r + slope*j) mod p == k`.
fn line_members(rows: usize, col_limit: usize, p: usize, slope: usize, k: usize) -> Vec<Cell> {
    let mut members = Vec::with_capacity(col_limit);
    for j in 0..col_limit {
        // r ≡ k - slope*j (mod p); include only stored rows.
        let r = (k + p * slope - (slope * j) % p) % p;
        if r < rows {
            members.push(Cell::new(r, j));
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tipish(p: usize) -> (Layout, Vec<ParityChain>) {
        generate(FamilyParams {
            p,
            data_cols: p - 2,
            slope1: 1,
            slope2: p - 1,
        })
    }

    #[test]
    fn dimensions() {
        let (layout, chains) = tipish(7);
        assert_eq!(layout.rows(), 6);
        assert_eq!(layout.cols(), 8);
        assert_eq!(chains.len(), 18); // 6 per direction
    }

    #[test]
    fn line_members_respects_row_bound() {
        // p=5, rows=4: residues that map to row 4 are dropped.
        let m = line_members(4, 4, 5, 1, 0);
        for cell in &m {
            assert!(cell.r() < 4);
            assert_eq!((cell.r() + cell.c()) % 5, 0);
        }
    }

    #[test]
    fn diagonal_chains_cover_h_column() {
        let (_, chains) = tipish(7);
        let diag: Vec<_> = chains
            .iter()
            .filter(|c| c.direction == Direction::Diagonal)
            .collect();
        let covers_h = diag.iter().any(|c| c.members.iter().any(|m| m.c() == 5));
        assert!(
            covers_h,
            "slope-1 family must include the H column (RDP style)"
        );
    }

    #[test]
    fn second_family_stops_at_h_column() {
        let (_, chains) = tipish(7);
        let anti: Vec<_> = chains
            .iter()
            .filter(|c| c.direction == Direction::AntiDiagonal)
            .collect();
        let covers_h = anti.iter().any(|c| c.members.iter().any(|m| m.c() == 5));
        let covers_p1 = anti.iter().any(|c| c.members.iter().any(|m| m.c() == 6));
        assert!(covers_h, "second family must include the H column");
        assert!(
            !covers_p1,
            "covering P1 breaks triple-fault tolerance (see audit)"
        );
    }

    #[test]
    fn each_cell_on_at_most_one_line_per_family() {
        let (layout, chains) = tipish(11);
        for cell in layout.cells() {
            for dir in [Direction::Diagonal, Direction::AntiDiagonal] {
                let n = chains
                    .iter()
                    .filter(|c| c.direction == dir && c.members.contains(&cell))
                    .count();
                assert!(n <= 1, "{cell} on {n} {dir} lines");
            }
        }
    }

    #[test]
    fn unprotected_line_exists_per_family() {
        // Residue p-1 has no parity slot: some data cells lack a diagonal chain.
        let (layout, chains) = tipish(7);
        let p = 7;
        let mut missing_diag = 0;
        for cell in layout.data_cells() {
            let on_missing = (cell.r() + cell.c()) % p == p - 1;
            let has_diag = chains
                .iter()
                .any(|c| c.direction == Direction::Diagonal && c.members.contains(&cell));
            assert_eq!(!on_missing, has_diag, "{cell}");
            if on_missing {
                missing_diag += 1;
            }
        }
        assert!(missing_diag > 0);
    }

    #[test]
    #[should_panic(expected = "slopes must differ")]
    fn equal_slopes_rejected() {
        generate(FamilyParams {
            p: 5,
            data_cols: 3,
            slope1: 1,
            slope2: 6, // ≡ 1 mod 5
        });
    }
}
