//! Triple-STAR geometry (`n = p + 2` disks).
//!
//! Triple-STAR (Wang et al. 2012 — the paper's reference \[6\]) tolerates
//! triple failures on `p + 2` disks with optimal encoding complexity. Its
//! headline property — no EVENODD adjusters — is exactly what the
//! adjuster-free [`family`](super::family) construction provides, so we
//! instantiate it with `p - 1` data columns and slope `+1` / `-1` families.

use super::family::{self, FamilyParams};
use crate::chain::ParityChain;
use crate::layout::Layout;

/// Build Triple-STAR for prime `p`.
pub fn generate(p: usize) -> (Layout, Vec<ParityChain>) {
    family::generate(FamilyParams {
        p,
        data_cols: p - 1,
        slope1: 1,
        slope2: p - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Direction;

    #[test]
    fn disk_count_is_p_plus_two() {
        let (layout, _) = generate(7);
        assert_eq!(layout.cols(), 9);
        assert_eq!(layout.rows(), 6);
    }

    #[test]
    fn horizontal_chains_have_p_minus_one_members() {
        let (_, chains) = generate(7);
        for c in chains
            .iter()
            .filter(|c| c.direction == Direction::Horizontal)
        {
            assert_eq!(c.len(), 6); // p - 1 data columns
        }
    }

    #[test]
    fn wider_than_tip_same_prime() {
        let (ts, _) = generate(11);
        let (tip, _) = super::super::tip::generate(11);
        assert_eq!(ts.cols(), tip.cols() + 1);
    }
}
