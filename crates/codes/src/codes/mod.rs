//! The four 3DFT codes of the paper, represented uniformly.
//!
//! A [`StripeCode`] bundles a stripe [`Layout`] with the full list of parity
//! [`ParityChain`]s (XOR equations) and a per-cell membership index. All four
//! codes are built through two generators:
//!
//! * [`family`] — an adjuster-free "RDP/RTP-style" construction used for
//!   TIP-code, HDD1 and Triple-STAR (see each module's docs for the fidelity
//!   notes; the FBF paper relies only on the chain *geometry*, which these
//!   constructions preserve: `n = p+1 / p+1 / p+2` disks, `p-1` rows, three
//!   chain directions per data cell);
//! * [`star`] — the faithful STAR construction (Huang & Xu 2008): EVENODD
//!   plus an anti-diagonal parity column, with the adjuster lines folded
//!   into each diagonal/anti-diagonal equation.

pub mod family;
pub mod hdd1;
pub mod raid6;
pub mod star;
pub mod tip;
pub mod triple_star;

use crate::chain::{ChainId, Direction, Membership, ParityChain};
use crate::layout::{Cell, CellKind, Layout};
use crate::{CodeError, Result};
use serde::{Deserialize, Serialize};

/// Which of the paper's four codes to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CodeSpec {
    /// TIP-code (Zhang et al., DSN'15) — `n = p + 1` disks.
    Tip,
    /// HDD1 (Tau & Wang 2003) — `n = p + 1` disks, rotated parity placement.
    Hdd1,
    /// Triple-STAR (Wang et al. 2012) — `n = p + 2` disks.
    TripleStar,
    /// STAR (Huang & Xu 2008) — `n = p + 3` disks, EVENODD-style adjusters.
    Star,
    /// RDP (RAID-6, 2-fault-tolerant) — `n = p + 1`; exercises FBF's
    /// any-XOR-code generality with only two chain directions.
    Rdp,
    /// EVENODD (RAID-6, 2-fault-tolerant) — `n = p + 2`.
    Evenodd,
}

impl CodeSpec {
    /// The paper's four 3DFT codes, in the order its figures list them.
    pub const ALL: [CodeSpec; 4] = [
        CodeSpec::Tip,
        CodeSpec::Hdd1,
        CodeSpec::TripleStar,
        CodeSpec::Star,
    ];

    /// Every shipped code, including the RAID-6 generality demonstrations.
    pub const EXTENDED: [CodeSpec; 6] = [
        CodeSpec::Tip,
        CodeSpec::Hdd1,
        CodeSpec::TripleStar,
        CodeSpec::Star,
        CodeSpec::Rdp,
        CodeSpec::Evenodd,
    ];

    /// Concurrent disk failures the code tolerates.
    pub fn fault_tolerance(&self) -> usize {
        match self {
            CodeSpec::Rdp | CodeSpec::Evenodd => 2,
            _ => 3,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CodeSpec::Tip => "TIP",
            CodeSpec::Hdd1 => "HDD1",
            CodeSpec::TripleStar => "TripleSTAR",
            CodeSpec::Star => "STAR",
            CodeSpec::Rdp => "RDP",
            CodeSpec::Evenodd => "EVENODD",
        }
    }

    /// Number of disks for a given prime (`p+1`, `p+1`, `p+2`, `p+3`).
    pub fn disks(&self, p: usize) -> usize {
        match self {
            CodeSpec::Tip | CodeSpec::Hdd1 | CodeSpec::Rdp => p + 1,
            CodeSpec::TripleStar | CodeSpec::Evenodd => p + 2,
            CodeSpec::Star => p + 3,
        }
    }

    /// Does this code rotate parity placement across stripes? (HDD1's
    /// contribution was parity *placement*; rotation spreads parity I/O over
    /// all disks, RAID-5 style.)
    pub fn rotated_placement(&self) -> bool {
        matches!(self, CodeSpec::Hdd1)
    }

    /// Smallest prime this code supports.
    pub fn min_prime(&self) -> usize {
        match self {
            // slope-2 second diagonal needs p >= 5 to stay distinct from
            // the slope-1 diagonal family.
            CodeSpec::Hdd1 => 5,
            _ => 3,
        }
    }
}

impl std::fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-built stripe code: layout + chains + membership index.
#[derive(Debug, Clone)]
pub struct StripeCode {
    spec: CodeSpec,
    p: usize,
    layout: Layout,
    chains: Vec<ParityChain>,
    membership: Membership,
}

impl StripeCode {
    /// Build the code `spec` over prime `p`.
    pub fn build(spec: CodeSpec, p: usize) -> Result<Self> {
        if !crate::prime::is_prime(p) {
            return Err(CodeError::NotPrime(p));
        }
        if p < spec.min_prime() {
            return Err(CodeError::PrimeTooSmall {
                p,
                min: spec.min_prime(),
            });
        }
        let (layout, chains) = match spec {
            CodeSpec::Tip => tip::generate(p),
            CodeSpec::Hdd1 => hdd1::generate(p),
            CodeSpec::TripleStar => triple_star::generate(p),
            CodeSpec::Star => star::generate(p),
            CodeSpec::Rdp => raid6::generate_rdp(p),
            CodeSpec::Evenodd => raid6::generate_evenodd(p),
        };
        let membership = Membership::build(layout.rows(), layout.cols(), &chains);
        let code = StripeCode {
            spec,
            p,
            layout,
            chains,
            membership,
        };
        code.debug_validate();
        Ok(code)
    }

    /// In debug builds, check structural invariants every constructor must
    /// uphold: parity cells referenced by members only from strictly later
    /// directions (so encoding in direction order is well-defined), all
    /// cells in-bounds, one chain per (direction, line).
    fn debug_validate(&self) {
        if cfg!(debug_assertions) {
            let mut seen = std::collections::HashSet::new();
            for chain in &self.chains {
                assert!(
                    seen.insert((chain.direction, chain.line)),
                    "duplicate chain {:?}/{}",
                    chain.direction,
                    chain.line
                );
                assert!(self.layout.contains(chain.parity));
                assert_eq!(
                    self.layout.kind(chain.parity),
                    CellKind::Parity(chain.direction.index() as u8),
                    "chain parity cell has wrong kind"
                );
                for &m in &chain.members {
                    assert!(self.layout.contains(m));
                    if let CellKind::Parity(d) = self.layout.kind(m) {
                        assert!(
                            (d as usize) < chain.direction.index(),
                            "{} chain {} references parity of direction {d} as member",
                            chain.direction,
                            chain.line
                        );
                    }
                }
            }
        }
    }

    /// Which code this is.
    #[inline]
    pub fn spec(&self) -> CodeSpec {
        self.spec
    }

    /// The prime parameter.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Rows per stripe (`p - 1`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.layout.rows()
    }

    /// Columns, i.e. disks (`n`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.layout.cols()
    }

    /// The stripe layout.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// All parity chains of one stripe.
    #[inline]
    pub fn chains(&self) -> &[ParityChain] {
        &self.chains
    }

    /// Look a chain up by id.
    #[inline]
    pub fn chain(&self, id: ChainId) -> &ParityChain {
        &self.chains[id.index()]
    }

    /// Chains covering `cell` (as member or parity).
    #[inline]
    pub fn chains_of(&self, cell: Cell) -> &[ChainId] {
        self.membership.chains_of(cell)
    }

    /// Chains of a given direction covering `cell`.
    pub fn chains_of_direction(&self, cell: Cell, dir: Direction) -> Vec<ChainId> {
        self.chains_of(cell)
            .iter()
            .copied()
            .filter(|&id| self.chain(id).direction == dir)
            .collect()
    }

    /// Data cells of the stripe, row-major.
    pub fn data_cells(&self) -> Vec<Cell> {
        self.layout.data_cells().collect()
    }

    /// Short description, e.g. `TIP(p=7, n=8)`.
    pub fn describe(&self) -> String {
        format!("{}(p={}, n={})", self.spec.name(), self.p, self.cols())
    }
}

/// Helper shared by constructors: allocate sequential [`ChainId`]s.
pub(crate) struct ChainBuilder {
    chains: Vec<ParityChain>,
}

impl ChainBuilder {
    pub(crate) fn new() -> Self {
        ChainBuilder { chains: Vec::new() }
    }

    pub(crate) fn push(
        &mut self,
        direction: Direction,
        line: usize,
        members: Vec<Cell>,
        parity: Cell,
    ) {
        let id = ChainId(u16::try_from(self.chains.len()).expect("chain count fits u16"));
        self.chains.push(ParityChain::new(
            id,
            direction,
            line as u16,
            members,
            parity,
        ));
    }

    pub(crate) fn finish(self) -> Vec<ParityChain> {
        self.chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::PAPER_PRIMES;

    #[test]
    fn disk_counts_match_paper() {
        assert_eq!(CodeSpec::Tip.disks(5), 6);
        assert_eq!(CodeSpec::Hdd1.disks(7), 8);
        assert_eq!(CodeSpec::TripleStar.disks(7), 9);
        assert_eq!(CodeSpec::Star.disks(7), 10);
    }

    #[test]
    fn build_rejects_non_prime() {
        assert!(matches!(
            StripeCode::build(CodeSpec::Tip, 6),
            Err(CodeError::NotPrime(6))
        ));
        assert!(matches!(
            StripeCode::build(CodeSpec::Star, 9),
            Err(CodeError::NotPrime(9))
        ));
    }

    #[test]
    fn build_rejects_small_prime_for_hdd1() {
        assert!(matches!(
            StripeCode::build(CodeSpec::Hdd1, 3),
            Err(CodeError::PrimeTooSmall { p: 3, min: 5 })
        ));
    }

    #[test]
    fn all_codes_build_for_paper_primes() {
        for spec in CodeSpec::ALL {
            for p in PAPER_PRIMES {
                let code = StripeCode::build(spec, p).unwrap();
                assert_eq!(code.rows(), p - 1, "{spec} p={p}");
                assert_eq!(code.cols(), spec.disks(p), "{spec} p={p}");
                assert!(!code.chains().is_empty());
            }
        }
    }

    #[test]
    fn every_data_cell_has_a_horizontal_chain() {
        for spec in CodeSpec::ALL {
            let code = StripeCode::build(spec, 7).unwrap();
            for cell in code.data_cells() {
                let h = code.chains_of_direction(cell, Direction::Horizontal);
                assert_eq!(h.len(), 1, "{spec} cell {cell} horizontal chains");
            }
        }
    }

    #[test]
    fn chain_lookup_by_id_is_consistent() {
        let code = StripeCode::build(CodeSpec::TripleStar, 7).unwrap();
        for chain in code.chains() {
            assert_eq!(code.chain(chain.id).id, chain.id);
        }
    }

    #[test]
    fn describe_formats() {
        let code = StripeCode::build(CodeSpec::Tip, 7).unwrap();
        assert_eq!(code.describe(), "TIP(p=7, n=8)");
    }
}
