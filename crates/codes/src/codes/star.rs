//! STAR code (`n = p + 3` disks) — faithful construction.
//!
//! STAR (Huang & Xu 2008 — the paper's reference \[5\]) extends EVENODD with
//! a third, anti-diagonal parity column:
//!
//! * data occupies columns `0..p`, a `(p-1) × p` grid (row `p-1` is the
//!   imaginary all-zero row);
//! * column `p` holds horizontal parity;
//! * column `p+1` holds diagonal parity: `q_k = S1 ⊕ XOR{ d(r,j) :
//!   (r+j) mod p == k }` where the *adjuster* `S1` is the XOR of the
//!   diagonal with residue `p-1`;
//! * column `p+2` holds anti-diagonal parity with residue lines
//!   `(r-j) mod p == k` and its own adjuster `S2`.
//!
//! The adjusters are folded into each equation: since the adjuster line and
//! the residue-`k` line are disjoint for `k != p-1`, the equation
//! `q_k = S1 ⊕ line_k` is exactly `q_k = XOR(line_k ∪ adjuster_line)` — a
//! plain XOR chain. This means every diagonal chain *contains the adjuster
//! line's cells as members*, so adjuster cells sit on `p-1` diagonal chains
//! at once. The FBF paper observes precisely this: "adjusters of each
//! stripe can be referenced for more than three times and always assigned
//! with highest priority" (§IV-B-1), which is why STAR shows the highest
//! hit ratios in Fig. 8.

use crate::chain::{Direction, ParityChain};
use crate::codes::ChainBuilder;
use crate::layout::{Cell, CellKind, Layout};

/// Build STAR for prime `p`.
pub fn generate(p: usize) -> (Layout, Vec<ParityChain>) {
    let rows = p - 1;
    let cols = p + 3;
    let hcol = p;
    let dcol = p + 1;
    let acol = p + 2;

    let mut layout = Layout::all_data(rows, cols);
    for r in 0..rows {
        layout.set_kind(Cell::new(r, hcol), CellKind::Parity(0));
        layout.set_kind(Cell::new(r, dcol), CellKind::Parity(1));
        layout.set_kind(Cell::new(r, acol), CellKind::Parity(2));
    }

    let mut b = ChainBuilder::new();

    // Horizontal chains over the data columns.
    for r in 0..rows {
        let members: Vec<Cell> = (0..p).map(|j| Cell::new(r, j)).collect();
        b.push(Direction::Horizontal, r, members, Cell::new(r, hcol));
    }

    // Diagonal chains: line_k ∪ adjuster line (residue p-1), slope +1.
    let diag_adjuster = data_line(rows, p, 1, p - 1);
    for k in 0..rows {
        let mut members = data_line(rows, p, 1, k);
        members.extend_from_slice(&diag_adjuster);
        b.push(Direction::Diagonal, k, members, Cell::new(k, dcol));
    }

    // Anti-diagonal chains: slope -1 ≡ p-1, with their own adjuster line.
    let anti_adjuster = data_line(rows, p, p - 1, p - 1);
    for k in 0..rows {
        let mut members = data_line(rows, p, p - 1, k);
        members.extend_from_slice(&anti_adjuster);
        b.push(Direction::AntiDiagonal, k, members, Cell::new(k, acol));
    }

    (layout, b.finish())
}

/// Data cells on residue line `(r + slope*j) mod p == k`, `j < p`, stored
/// rows only.
fn data_line(rows: usize, p: usize, slope: usize, k: usize) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(p);
    for j in 0..p {
        let r = (k + p * slope - (slope * j) % p) % p;
        if r < rows {
            cells.push(Cell::new(r, j));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_count_is_p_plus_three() {
        let (layout, _) = generate(5);
        assert_eq!(layout.cols(), 8);
        assert_eq!(layout.rows(), 4);
    }

    #[test]
    fn diagonal_chains_share_adjuster_cells() {
        let p = 5;
        let (_, chains) = generate(p);
        let adjuster = data_line(p - 1, p, 1, p - 1);
        assert_eq!(adjuster.len(), p - 1, "adjuster line has p-1 stored cells");
        for c in chains.iter().filter(|c| c.direction == Direction::Diagonal) {
            for &a in &adjuster {
                // Adjuster cells are members of every diagonal chain except
                // when the line k coincides — k != p-1 always here — or when
                // dedup removed a duplicate (lines are disjoint, so never).
                assert!(
                    c.members.contains(&a),
                    "chain {} missing adjuster {a}",
                    c.line
                );
            }
        }
    }

    #[test]
    fn adjuster_cells_have_high_membership() {
        use crate::chain::Membership;
        let p = 7;
        let (layout, chains) = generate(p);
        let m = Membership::build(layout.rows(), layout.cols(), &chains);
        let adjuster = data_line(p - 1, p, 1, p - 1);
        for a in adjuster {
            // 1 horizontal + (p-1) diagonals + >=1 anti-diagonal.
            assert!(
                m.chains_of(a).len() >= p,
                "{a} membership {}",
                m.chains_of(a).len()
            );
        }
    }

    #[test]
    fn data_line_slope_one() {
        let line = data_line(4, 5, 1, 2);
        for c in &line {
            assert_eq!((c.r() + c.c()) % 5, 2);
        }
        // j=0..4, r = 2,1,0,4(dropped),3 → 4 cells
        assert_eq!(line.len(), 4);
    }

    #[test]
    fn parity_columns_not_members() {
        let (_, chains) = generate(7);
        for c in &chains {
            for m in &c.members {
                assert!(m.c() < 7, "STAR chains cover only data columns, got {m}");
            }
        }
    }
}
