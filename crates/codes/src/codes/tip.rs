//! TIP-code geometry (`n = p + 1` disks).
//!
//! TIP-code ("Three Independent Parity", Zhang et al., DSN'15 — the paper's
//! reference \[1\]) tolerates triple failures with `p + 1` disks and optimal
//! update complexity. We instantiate it from the adjuster-free
//! [`family`](super::family) generator with `p - 2` data columns and
//! slope `+1` / slope `-1` diagonal families, which reproduces the
//! chain geometry FBF's figures rely on: `p - 1` rows, every chunk covered
//! by up to three chains (horizontal, diagonal, anti-diagonal), chains of
//! length `O(p)`.

use super::family::{self, FamilyParams};
use crate::chain::ParityChain;
use crate::layout::Layout;

/// Build TIP-code for prime `p`.
pub fn generate(p: usize) -> (Layout, Vec<ParityChain>) {
    family::generate(FamilyParams {
        p,
        data_cols: p - 2,
        slope1: 1,
        slope2: p - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Direction;

    #[test]
    fn tip_p5_matches_fig1_dimensions() {
        // Fig. 1 of the FBF paper: 6-disk array for P = 5.
        let (layout, _) = generate(5);
        assert_eq!(layout.cols(), 6);
        assert_eq!(layout.rows(), 4);
    }

    #[test]
    fn tip_p7_matches_fig3_dimensions() {
        // Fig. 3 / Table III: P = 7, N = 8; chunk addresses go up to C(5,7).
        let (layout, _) = generate(7);
        assert_eq!(layout.cols(), 8);
        assert_eq!(layout.rows(), 6);
    }

    #[test]
    fn three_chain_families() {
        let (_, chains) = generate(7);
        for dir in Direction::ALL {
            let n = chains.iter().filter(|c| c.direction == dir).count();
            assert_eq!(n, 6, "{dir} chain count");
        }
    }

    #[test]
    fn anti_diagonal_is_slope_minus_one() {
        let (_, chains) = generate(7);
        for c in chains
            .iter()
            .filter(|c| c.direction == Direction::AntiDiagonal)
        {
            for m in &c.members {
                // members on data+H+P1 columns satisfy (r - j) ≡ k (mod 7)
                assert_eq!(
                    (m.r() + 6 * m.c()) % 7,
                    c.line as usize,
                    "chain {} member {m}",
                    c.line
                );
            }
        }
    }
}
