//! RAID-6 codes: RDP and EVENODD.
//!
//! FBF's analysis (§IV-C) claims the scheme "can apply to a wide range of
//! storage arrays" because it only consumes chain structure. These two
//! classic double-fault-tolerant codes exercise that claim: they have only
//! two chain directions (horizontal + diagonal), so the FBF scheme
//! generator's direction cycling degrades gracefully and the priority
//! dictionary still finds shared chunks.
//!
//! * **RDP** (Corbett et al., FAST'04): `(p-1) × (p+1)` over prime `p`;
//!   `p-1` data columns, a row-parity column, and a diagonal-parity column
//!   whose chains *include the row-parity column* — the adjuster-free
//!   trick our 3DFT family generalises.
//! * **EVENODD** (Blaum et al. 1995): `(p-1) × (p+2)`; `p` data columns,
//!   row parity, and diagonal parity with the adjuster line folded into
//!   every diagonal equation (exactly as our faithful STAR does for its
//!   first two directions).

use crate::chain::{Direction, ParityChain};
use crate::codes::ChainBuilder;
use crate::layout::{Cell, CellKind, Layout};

/// Build RDP for prime `p`.
pub fn generate_rdp(p: usize) -> (Layout, Vec<ParityChain>) {
    let rows = p - 1;
    let d = p - 1; // data columns
    let hcol = d;
    let dcol = d + 1;
    let cols = d + 2;

    let mut layout = Layout::all_data(rows, cols);
    for r in 0..rows {
        layout.set_kind(Cell::new(r, hcol), CellKind::Parity(0));
        layout.set_kind(Cell::new(r, dcol), CellKind::Parity(1));
    }

    let mut b = ChainBuilder::new();
    for r in 0..rows {
        let members: Vec<Cell> = (0..d).map(|j| Cell::new(r, j)).collect();
        b.push(Direction::Horizontal, r, members, Cell::new(r, hcol));
    }
    // Diagonals cover data + row-parity columns (j <= d), lines k in
    // 0..p-1 stored; residue p-1 is the missing diagonal.
    for k in 0..rows {
        let mut members = Vec::with_capacity(d + 1);
        for j in 0..=d {
            let r = (k + p - j % p) % p;
            if r < rows {
                members.push(Cell::new(r, j));
            }
        }
        b.push(Direction::Diagonal, k, members, Cell::new(k, dcol));
    }
    (layout, b.finish())
}

/// Build EVENODD for prime `p`.
pub fn generate_evenodd(p: usize) -> (Layout, Vec<ParityChain>) {
    let rows = p - 1;
    let d = p; // data columns
    let hcol = d;
    let dcol = d + 1;
    let cols = d + 2;

    let mut layout = Layout::all_data(rows, cols);
    for r in 0..rows {
        layout.set_kind(Cell::new(r, hcol), CellKind::Parity(0));
        layout.set_kind(Cell::new(r, dcol), CellKind::Parity(1));
    }

    let mut b = ChainBuilder::new();
    for r in 0..rows {
        let members: Vec<Cell> = (0..d).map(|j| Cell::new(r, j)).collect();
        b.push(Direction::Horizontal, r, members, Cell::new(r, hcol));
    }
    // Adjuster line: data cells with (r + j) mod p == p-1; folded into
    // every diagonal equation (q_k = S ⊕ line_k).
    let adjuster: Vec<Cell> = line(rows, d, p, p - 1);
    for k in 0..rows {
        let mut members = line(rows, d, p, k);
        members.extend_from_slice(&adjuster);
        b.push(Direction::Diagonal, k, members, Cell::new(k, dcol));
    }
    (layout, b.finish())
}

/// Data cells on `(r + j) mod p == k`, `j < cols_limit`.
fn line(rows: usize, cols_limit: usize, p: usize, k: usize) -> Vec<Cell> {
    (0..cols_limit)
        .filter_map(|j| {
            let r = (k + p - j % p) % p;
            (r < rows).then(|| Cell::new(r, j))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::{CodeSpec, StripeCode};
    use crate::decode::decode;
    use crate::encode::encode;
    use crate::stripe::Stripe;
    use crate::CodeError;

    #[test]
    fn rdp_dimensions() {
        let (layout, chains) = generate_rdp(5);
        assert_eq!(layout.cols(), 6); // p + 1
        assert_eq!(layout.rows(), 4);
        assert_eq!(chains.len(), 8);
    }

    #[test]
    fn evenodd_dimensions() {
        let (layout, chains) = generate_evenodd(5);
        assert_eq!(layout.cols(), 7); // p + 2
        assert_eq!(layout.rows(), 4);
        assert_eq!(chains.len(), 8);
    }

    fn encoded(spec: CodeSpec, p: usize) -> (StripeCode, Stripe) {
        let code = StripeCode::build(spec, p).unwrap();
        let mut s = Stripe::patterned(code.layout(), 32);
        encode(&code, &mut s).unwrap();
        (code, s)
    }

    #[test]
    fn double_column_erasure_recovers() {
        for spec in [CodeSpec::Rdp, CodeSpec::Evenodd] {
            let (code, stripe) = encoded(spec, 5);
            for c1 in 0..code.cols() {
                for c2 in c1 + 1..code.cols() {
                    let erased: Vec<_> = (0..code.rows())
                        .flat_map(|r| [Cell::new(r, c1), Cell::new(r, c2)])
                        .collect();
                    let mut s = stripe.clone();
                    for &c in &erased {
                        s.erase(code.layout(), c);
                    }
                    decode(&code, &mut s, &erased)
                        .unwrap_or_else(|e| panic!("{spec:?} ({c1},{c2}): {e}"));
                    for &c in &erased {
                        assert_eq!(s.get(code.layout(), c), stripe.get(code.layout(), c));
                    }
                }
            }
        }
    }

    #[test]
    fn triple_column_erasure_fails() {
        // RAID-6 tolerates exactly two column failures.
        let (code, stripe) = encoded(CodeSpec::Rdp, 5);
        let erased: Vec<_> = (0..code.rows())
            .flat_map(|r| [Cell::new(r, 0), Cell::new(r, 1), Cell::new(r, 2)])
            .collect();
        let mut s = stripe.clone();
        for &c in &erased {
            s.erase(code.layout(), c);
        }
        assert!(matches!(
            decode(&code, &mut s, &erased),
            Err(CodeError::Unrecoverable { .. })
        ));
    }

    #[test]
    fn raid6_cells_have_at_most_two_directions() {
        for spec in [CodeSpec::Rdp, CodeSpec::Evenodd] {
            let code = StripeCode::build(spec, 7).unwrap();
            for cell in code.data_cells() {
                let dirs: std::collections::HashSet<Direction> = code
                    .chains_of(cell)
                    .iter()
                    .map(|&id| code.chain(id).direction)
                    .collect();
                assert!(dirs.len() <= 2, "{spec:?} {cell}: {dirs:?}");
                assert!(!dirs.contains(&Direction::AntiDiagonal));
            }
        }
    }
}
