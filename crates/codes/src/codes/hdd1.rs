//! HDD1 geometry (`n = p + 1` disks, rotated parity placement).
//!
//! HDD1 (Tau & Wang 2003 — the paper's reference \[14\]) is a parity
//! *placement* scheme for triple-failure tolerance on `p + 1` disks. We
//! model it with the same `p - 2`-data-column family as TIP but with a
//! **slope `+2` second diagonal family** instead of the anti-diagonal, and
//! — the placement contribution — the array layer rotates each stripe's
//! column-to-disk mapping (see
//! [`CodeSpec::rotated_placement`](crate::CodeSpec::rotated_placement)),
//! spreading parity traffic across all disks.

use super::family::{self, FamilyParams};
use crate::chain::ParityChain;
use crate::layout::Layout;

/// Build HDD1 for prime `p` (requires `p >= 5` so the slope families stay
/// distinct).
pub fn generate(p: usize) -> (Layout, Vec<ParityChain>) {
    family::generate(FamilyParams {
        p,
        data_cols: p - 2,
        slope1: 1,
        slope2: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Direction;
    use crate::codes::CodeSpec;

    #[test]
    fn disk_count_is_p_plus_one() {
        let (layout, _) = generate(11);
        assert_eq!(layout.cols(), 12);
        assert_eq!(layout.rows(), 10);
    }

    #[test]
    fn second_family_has_slope_two() {
        let (_, chains) = generate(7);
        for c in chains
            .iter()
            .filter(|c| c.direction == Direction::AntiDiagonal)
        {
            for m in &c.members {
                assert_eq!((m.r() + 2 * m.c()) % 7, c.line as usize);
            }
        }
    }

    #[test]
    fn placement_is_rotated() {
        assert!(CodeSpec::Hdd1.rotated_placement());
        assert!(!CodeSpec::Tip.rotated_placement());
    }

    #[test]
    fn geometry_differs_from_tip() {
        let (_, tip_chains) = super::super::tip::generate(7);
        let (_, hdd1_chains) = generate(7);
        assert_ne!(
            tip_chains, hdd1_chains,
            "HDD1 second family must differ from TIP's"
        );
    }
}
