//! Subscriber swap-out is race-free: with emitter threads running hot,
//! every event lands in exactly one subscriber — none lost, none
//! duplicated — no matter how many times the subscriber is swapped.

use fbf_obs::{counter, install, uninstall, CountingSubscriber, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn events_are_conserved_across_subscriber_swaps() {
    const EMITTERS: usize = 4;
    const EVENTS_PER_EMITTER: u64 = 20_000;
    const SWAPS: usize = 50;

    let subs: Vec<Arc<CountingSubscriber>> = (0..SWAPS + 1)
        .map(|_| Arc::new(CountingSubscriber::default()))
        .collect();

    // Install the first subscriber BEFORE any emitter starts, and only
    // swap (never uninstall) while they run: `enabled()` stays true for
    // the whole emission window, so conservation is exact.
    install(subs[0].clone());

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let emitters: Vec<_> = (0..EMITTERS)
            .map(|_| {
                s.spawn(|| {
                    for i in 0..EVENTS_PER_EMITTER {
                        counter(
                            "race",
                            "tick",
                            &[("n", Value::U64(1)), ("i", Value::U64(i))],
                        );
                    }
                })
            })
            .collect();

        let swapper = {
            let stop = stop.clone();
            let subs = &subs;
            s.spawn(move || {
                let mut i = 1;
                while !stop.load(Ordering::Relaxed) && i < subs.len() {
                    install(subs[i].clone());
                    i += 1;
                    std::thread::yield_now();
                }
            })
        };

        for e in emitters {
            e.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        swapper.join().unwrap();
    });
    uninstall();

    let expected = EMITTERS as u64 * EVENTS_PER_EMITTER;
    let total_events: u64 = subs.iter().map(|s| s.events()).sum();
    let total_n: u64 = subs.iter().map(|s| s.total("race/tick/n")).sum();
    assert_eq!(
        total_events, expected,
        "every emitted event must land in exactly one subscriber"
    );
    assert_eq!(total_n, expected, "summed args must be conserved too");
}
