//! Always-on flight recorder: per-thread ring buffers of the last N
//! events, dumped on demand or on a fault trigger.
//!
//! The recorder sits *beside* the subscriber slot, not in it: `emit`
//! delivers every event to the recorder first, then to whatever
//! subscriber is installed. Installing the recorder alone is enough to
//! light up the emission sites (`fbf_obs::enabled()` goes true), so a
//! faulted campaign leaves a post-mortem trail even when no tracing was
//! requested — the point of a flight recorder.
//!
//! ## Cost model
//!
//! Each thread records into its own ring; the per-event lock is owned by
//! the recording thread and only ever contended by a dump (rare), so the
//! emission path never blocks on another emitter. With the recorder
//! absent the cost is the usual single relaxed load; the `perf_baseline`
//! benches `obs_ring_disabled` / `obs_ring_enabled` pin both sides and
//! `scripts/bench.sh` prints the ratios.
//!
//! ## Memory bound and drop semantics
//!
//! Every ring holds at most `capacity` owned events (default
//! [`DEFAULT_CAPACITY`], override via [`FlightRecorder::with_capacity`]
//! or `FBF_RING_CAP`). When full, the oldest event is dropped and the
//! ring's `dropped` counter grows — a dump therefore always holds the
//! *most recent* window, and reports how much history it lost.
//!
//! ## Dumps
//!
//! [`FlightRecorder::dump_lines`] renders the retained events as
//! chrome-trace JSONL (the exact lines `TraceWriter` files hold, flow
//! records included), rings concatenated in registration order.
//! `normalize: true` rewrites the wall-clock and process-global fields —
//! timestamps become per-dump ordinals, durations zero, and thread /
//! trace / span / run ids are renumbered in first-appearance order — so
//! two seeded runs of the same faulted campaign dump byte-identical
//! files. Triggers ([`trigger_dump`]) snapshot the rings, remember the
//! last dump for inspection, and append to `$FBF_FLIGHT_DIR` when set.

use crate::subscriber::{Event, EventKind, TraceCtx, Value};
use crate::trace::render_chrome_line;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default per-thread ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 4096;

/// An event the ring owns outright (the emission-site `Event` borrows
/// its strings and args from the caller's stack).
#[derive(Debug, Clone)]
struct OwnedEvent {
    cat: String,
    name: String,
    kind: EventKind,
    ts_us: f64,
    tid: u64,
    ctx: Option<TraceCtx>,
    args: Vec<(String, OwnedValue)>,
}

#[derive(Debug, Clone)]
enum OwnedValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl OwnedValue {
    fn borrow(&self) -> Value<'_> {
        match self {
            OwnedValue::U64(v) => Value::U64(*v),
            OwnedValue::I64(v) => Value::I64(*v),
            OwnedValue::F64(v) => Value::F64(*v),
            OwnedValue::Str(v) => Value::Str(v),
        }
    }
}

/// One thread's ring. Only its owner thread pushes; dumps briefly lock
/// it to clone the contents.
#[derive(Debug, Default)]
struct ThreadRing {
    events: Mutex<VecDeque<OwnedEvent>>,
    dropped: AtomicU64,
}

/// The process flight recorder: a registry of per-thread rings.
pub struct FlightRecorder {
    /// Process-unique id — the per-thread ring cache keys on it (an
    /// address would be ambiguous once a dropped recorder's allocation
    /// is reused).
    id: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Source of [`FlightRecorder::id`] values.
static NEXT_RECORDER: AtomicU64 = AtomicU64::new(1);

impl FlightRecorder {
    /// A recorder with the default per-thread capacity (or `FBF_RING_CAP`
    /// when set to a positive integer).
    pub fn new() -> Self {
        let capacity = std::env::var("FBF_RING_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        Self::with_capacity(capacity)
    }

    /// A recorder holding at most `capacity` events per thread.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            id: NEXT_RECORDER.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn ring_for_this_thread(self: &Arc<Self>) -> Arc<ThreadRing> {
        thread_local! {
            // (recorder id, ring) — re-resolve if the recorder changed.
            static RING: std::cell::RefCell<Option<(u64, Arc<ThreadRing>)>> =
                const { std::cell::RefCell::new(None) };
        }
        let key = self.id;
        RING.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some((k, ring)) = slot.as_ref() {
                if *k == key {
                    return Arc::clone(ring);
                }
            }
            let ring = Arc::new(ThreadRing::default());
            self.rings
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::clone(&ring));
            *slot = Some((key, Arc::clone(&ring)));
            ring
        })
    }

    /// Record one event into the calling thread's ring.
    pub fn record(self: &Arc<Self>, event: &Event<'_>) {
        let owned = OwnedEvent {
            cat: event.cat.to_string(),
            name: event.name.to_string(),
            kind: event.kind,
            ts_us: event.ts_us,
            tid: event.tid,
            ctx: event.ctx,
            args: event
                .args
                .iter()
                .map(|(k, v)| {
                    let v = match v {
                        Value::U64(v) => OwnedValue::U64(*v),
                        Value::I64(v) => OwnedValue::I64(*v),
                        Value::F64(v) => OwnedValue::F64(*v),
                        Value::Str(v) => OwnedValue::Str((*v).to_string()),
                    };
                    ((*k).to_string(), v)
                })
                .collect(),
        };
        let ring = self.ring_for_this_thread();
        let mut events = ring.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(owned);
    }

    /// Events dropped across every ring since installation.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Events currently retained across every ring.
    pub fn len(&self) -> usize {
        self.rings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|r| r.events.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// No events retained?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained event (capacity and registration survive).
    pub fn clear(&self) {
        for ring in self.rings.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            ring.events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clear();
            ring.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Render the retained events as chrome-trace JSONL lines (newline
    /// terminated), rings concatenated in registration order, preceded by
    /// the standard process-metadata line.
    ///
    /// `normalize` rewrites every nondeterministic field for byte-exact
    /// reproducibility: `ts` becomes the event's dump ordinal, `dur` 0,
    /// and tids plus trace/span/parent/`run` ids are renumbered in
    /// first-appearance order.
    pub fn dump_lines(&self, normalize: bool) -> Vec<String> {
        let snapshots: Vec<Vec<OwnedEvent>> = self
            .rings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|r| {
                r.events
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .iter()
                    .cloned()
                    .collect()
            })
            .collect();
        let mut lines = Vec::new();
        lines.push(
            concat!(
                r#"{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"#,
                r#""pid":1,"tid":0,"args":{"name":"fbf-flight"}}"#,
                "\n"
            )
            .to_string(),
        );
        let mut norm = Normalizer::default();
        let mut ordinal = 0u64;
        for ring in snapshots {
            for mut ev in ring {
                if normalize {
                    norm.apply(&mut ev, ordinal);
                }
                ordinal += 1;
                let args: Vec<(&str, Value<'_>)> = ev
                    .args
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.borrow()))
                    .collect();
                lines.push(render_chrome_line(&Event {
                    cat: &ev.cat,
                    name: &ev.name,
                    kind: ev.kind,
                    ts_us: ev.ts_us,
                    tid: ev.tid,
                    ctx: ev.ctx,
                    args: &args,
                }));
            }
        }
        lines
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// First-appearance renumbering of the process-global id spaces, so two
/// seeded runs (whose absolute ids differ by whatever ran before them)
/// normalize to the same bytes.
#[derive(Default)]
struct Normalizer {
    tids: Vec<u64>,
    traces: Vec<u64>,
    spans: Vec<u64>,
    runs: Vec<u64>,
}

impl Normalizer {
    fn map(table: &mut Vec<u64>, id: u64) -> u64 {
        if id == 0 {
            return 0;
        }
        match table.iter().position(|&x| x == id) {
            Some(i) => i as u64 + 1,
            None => {
                table.push(id);
                table.len() as u64
            }
        }
    }

    fn apply(&mut self, ev: &mut OwnedEvent, ordinal: u64) {
        ev.ts_us = ordinal as f64;
        if let EventKind::Complete { dur_us } = &mut ev.kind {
            *dur_us = 0.0;
        }
        ev.tid = Self::map(&mut self.tids, ev.tid + 1) - 1;
        if let Some(ctx) = ev.ctx.as_mut() {
            ctx.trace = Self::map(&mut self.traces, ctx.trace);
            ctx.span = Self::map(&mut self.spans, ctx.span);
            ctx.parent = Self::map(&mut self.spans, ctx.parent);
        }
        for (key, value) in ev.args.iter_mut() {
            if key == "run" {
                if let OwnedValue::U64(v) = value {
                    *v = Self::map(&mut self.runs, *v);
                }
            }
            // Wall-clock measurement args (`*_ms` floats, e.g. the plan
            // span's `generation_ms`) vary run to run like `dur` does;
            // zero them so normalized dumps stay byte-diffable.
            if key.ends_with("_ms") {
                if let OwnedValue::F64(v) = value {
                    *v = 0.0;
                }
            }
        }
    }
}

/// The installed recorder (swapped under the lock like the subscriber).
static RECORDER: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);
/// Fast-path mirror of `RECORDER.is_some()`: the per-event tap loads
/// this relaxed flag instead of taking the lock, so a subscriber-only
/// process pays one load — not a lock round-trip — per event.
static RECORDER_ON: AtomicBool = AtomicBool::new(false);
/// Rendered lines of the most recent triggered dump, for inspection.
static LAST_DUMP: Mutex<Option<(String, Vec<String>)>> = Mutex::new(None);
/// Per-process dump counter (distinct trigger file names).
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The installed flight recorder, if any.
pub fn recorder() -> Option<Arc<FlightRecorder>> {
    RECORDER.read().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Install `rec` as the process flight recorder (replacing any previous
/// one) and light up the emission sites.
pub fn install(rec: Arc<FlightRecorder>) {
    RECORDER
        .write()
        .unwrap_or_else(|p| p.into_inner())
        .replace(rec);
    RECORDER_ON.store(true, Ordering::SeqCst);
    crate::refresh_enabled();
}

/// Install a default-capacity recorder unless one is already installed;
/// returns the active recorder either way.
pub fn install_default() -> Arc<FlightRecorder> {
    if let Some(rec) = recorder() {
        return rec;
    }
    let rec = Arc::new(FlightRecorder::new());
    install(Arc::clone(&rec));
    rec
}

/// Remove and return the flight recorder. Emission sites go quiet again
/// unless a subscriber is still installed.
pub fn uninstall() -> Option<Arc<FlightRecorder>> {
    let prev = RECORDER.write().unwrap_or_else(|p| p.into_inner()).take();
    RECORDER_ON.store(false, Ordering::SeqCst);
    crate::refresh_enabled();
    prev
}

/// Record `event` into the installed recorder, if any. Called by the
/// emission path for every event.
pub(crate) fn record(event: &Event<'_>) {
    if !RECORDER_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(rec) = recorder() {
        rec.record(event);
    }
}

/// Snapshot the rings because something went wrong (`reason` is a short
/// slug: `data-loss`, `slo-breach`, `client-dump`). The normalized dump
/// is remembered for [`last_dump`] and, when `$FBF_FLIGHT_DIR` names a
/// directory, written to `flight-<reason>-<seq>.jsonl` inside it.
/// Returns the dump's line count (0 when no recorder is installed).
pub fn trigger_dump(reason: &str) -> usize {
    let Some(rec) = recorder() else {
        return 0;
    };
    let lines = rec.dump_lines(true);
    let n = lines.len();
    if let Ok(dir) = std::env::var("FBF_FLIGHT_DIR") {
        if !dir.is_empty() {
            let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::path::Path::new(&dir).join(format!("flight-{reason}-{seq}.jsonl"));
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(&path, lines.concat());
        }
    }
    *LAST_DUMP.lock().unwrap_or_else(|p| p.into_inner()) = Some((reason.to_string(), lines));
    n
}

/// The most recent triggered dump, as `(reason, rendered lines)`.
pub fn last_dump() -> Option<(String, Vec<String>)> {
    LAST_DUMP.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev<'a>(name: &'a str, args: &'a [(&'a str, Value<'a>)]) -> Event<'a> {
        Event {
            cat: "t",
            name,
            kind: EventKind::Counter,
            ts_us: 12.5,
            tid: 7,
            ctx: None,
            args,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let rec = Arc::new(FlightRecorder::with_capacity(3));
        for i in 0..5u64 {
            rec.record(&ev("n", &[("i", Value::U64(i))]));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let lines = rec.dump_lines(false);
        // metadata + the last three events (2, 3, 4).
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("\"i\":2"), "{}", lines[1]);
        assert!(lines[3].contains("\"i\":4"), "{}", lines[3]);
    }

    #[test]
    fn normalized_dumps_are_reproducible_across_id_shifts() {
        let dump = |tid_base: u64, run_base: u64, trace_base: u64| {
            let rec = Arc::new(FlightRecorder::with_capacity(16));
            for i in 0..3u64 {
                rec.record(&Event {
                    cat: "engine",
                    name: "cache",
                    kind: EventKind::Complete {
                        dur_us: 5.0 + i as f64,
                    },
                    ts_us: 100.0 * i as f64,
                    tid: tid_base,
                    ctx: Some(TraceCtx {
                        trace: trace_base + i,
                        span: trace_base + 10 + i,
                        parent: if i == 0 { 0 } else { trace_base + 9 + i },
                    }),
                    args: &[("run", Value::U64(run_base + i)), ("hits", Value::U64(40))],
                });
            }
            rec.dump_lines(true).concat()
        };
        // Different absolute ids (as if other work ran first), same shape.
        assert_eq!(dump(3, 100, 50), dump(9, 777, 4000));
        // Content differences still show.
        assert_ne!(dump(3, 100, 50), {
            let rec = Arc::new(FlightRecorder::with_capacity(16));
            rec.record(&ev("other", &[]));
            rec.dump_lines(true).concat()
        });
    }

    #[test]
    fn trigger_records_a_last_dump() {
        // Serialise against other tests touching the global recorder.
        let prev = uninstall();
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        install(Arc::clone(&rec));
        assert!(crate::enabled(), "recorder alone lights the gate");
        rec.record(&ev("boom", &[]));
        let n = trigger_dump("test-reason");
        assert_eq!(n, 2, "metadata + one event");
        let (reason, lines) = last_dump().expect("dump recorded");
        assert_eq!(reason, "test-reason");
        assert_eq!(lines.len(), 2);
        uninstall();
        assert!(recorder().is_none());
        if let Some(prev) = prev {
            install(prev);
        }
    }
}
