//! Fan-out subscriber bridging events to live consumers.
//!
//! The daemon streams repair progress to connected clients by installing
//! a [`BridgeSubscriber`]: every observability event is rendered once as
//! a chrome-trace line (the exact format the JSONL trace files hold, see
//! [`render_chrome_line`](crate::trace::render_chrome_line)) and pushed
//! to each subscribed channel. Receivers that have gone away are pruned
//! on the next event, so a dropped client costs one failed send, not a
//! leak.

use crate::subscriber::{Event, Subscriber};
use crate::trace::render_chrome_line;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

/// A [`Subscriber`] that fans rendered event lines out to channels.
#[derive(Default)]
pub struct BridgeSubscriber {
    sinks: Mutex<Vec<Sender<String>>>,
}

impl BridgeSubscriber {
    /// An empty bridge (no subscribers yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a new consumer; every later event arrives on the receiver
    /// as one rendered chrome-trace line (trailing newline included).
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.sinks
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(tx);
        rx
    }

    /// Current live subscriber count (after pruning on the last event).
    pub fn subscribers(&self) -> usize {
        self.sinks.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl Subscriber for BridgeSubscriber {
    fn event(&self, event: &Event<'_>) {
        let mut sinks = self.sinks.lock().unwrap_or_else(|p| p.into_inner());
        if sinks.is_empty() {
            return; // don't render for nobody
        }
        let line = render_chrome_line(event);
        sinks.retain(|tx| tx.send(line.clone()).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscriber::EventKind;

    fn event<'a>() -> Event<'a> {
        Event {
            cat: "daemon",
            name: "job",
            kind: EventKind::Instant,
            ts_us: 1.0,
            tid: 0,
            ctx: None,
            args: &[],
        }
    }

    #[test]
    fn delivers_rendered_lines_to_every_subscriber() {
        let bridge = BridgeSubscriber::new();
        let a = bridge.subscribe();
        let b = bridge.subscribe();
        bridge.event(&event());
        let la = a.try_recv().unwrap();
        let lb = b.try_recv().unwrap();
        assert_eq!(la, lb);
        assert!(la.contains(r#""name":"job""#));
        assert!(la.ends_with('\n'));
    }

    #[test]
    fn prunes_dropped_receivers() {
        let bridge = BridgeSubscriber::new();
        let keep = bridge.subscribe();
        drop(bridge.subscribe());
        bridge.event(&event());
        assert_eq!(bridge.subscribers(), 1);
        assert!(keep.try_recv().is_ok());
    }
}
