//! # fbf-obs — structured tracing and event counters for the FBF stack
//!
//! The simulator, cache, and sweep engine explain themselves through this
//! crate: phase spans (plan / simulate / gather), per-run cache and disk
//! counter events, and a process-wide counter registry. The design follows
//! the `tracing` crate in spirit — a global pluggable [`Subscriber`] that
//! every layer emits into — vendored-stub style like the rest of the
//! workspace (no external dependencies, the API subset we actually use).
//!
//! ## Zero cost when disabled
//!
//! No subscriber installed (the default) means every emission site reduces
//! to one relaxed atomic load and a branch; spans skip even the clock
//! read. Nothing in the simulator's per-access hot loop emits at all —
//! hot-path counters ride on the stats structs the engine already owns
//! (`CacheStats`, `DiskStats`) and are published *once per run* at run
//! boundaries, so enabling observability does not perturb the measurements
//! it reports. The `perf_baseline` bench pins both claims
//! (`obs_span_disabled`, `engine_run_8x` vs `engine_run_8x_obs`).
//!
//! ## Event taxonomy
//!
//! Events are chrome-trace shaped (see [`TraceWriter`]): a category, a
//! name, a phase (complete span / instant / counter), microsecond
//! timestamps, a per-thread track id, and typed key→value args.
//!
//! | cat/name | kind | emitted by |
//! |---|---|---|
//! | `plan/cold` | span | campaign generation (code, p, stripes, …) |
//! | `plan/warm` | instant | plan-store hit |
//! | `runner/simulate` | span | one experiment's engine run |
//! | `engine/run` | span | engine execution (makespan, event count) |
//! | `engine/cache` | counter | per-run hit/miss/eviction/demotion totals |
//! | `engine/queues` | counter | FBF Q1/Q2/Q3 final occupancy |
//! | `engine/disk` | counter | per-disk reads/writes/queue depth |
//! | `sweep/run` | span | whole sweep |
//! | `sweep/point` | span | one sweep point (plan + simulate split) |
//! | `sweep/worker` | instant | per-worker points + busy time |
//! | `sweep/summary` | counter | end-of-sweep phase totals + utilization |
//!
//! ## Metrics layer
//!
//! Beyond events, the crate carries the `fbf-metrics` module family:
//! [`digest`] — mergeable log-linear quantile digests plus the
//! [`RequestClass`] taxonomy that attributes every engine completion to
//! app / recovery / replan / scrub traffic — and [`prom`], a Prometheus
//! text-exposition snapshot writer rendering those digests as cumulative
//! `le` histograms (see DESIGN.md §11).
//!
//! ```
//! use std::sync::Arc;
//! let sub = Arc::new(fbf_obs::CountingSubscriber::default());
//! fbf_obs::install(sub.clone());
//! {
//!     let span = fbf_obs::span("demo", "work");
//!     fbf_obs::counter("demo", "cache", &[("hits", fbf_obs::Value::U64(3))]);
//!     span.end_with(&[("ok", fbf_obs::Value::U64(1))]);
//! }
//! fbf_obs::uninstall();
//! assert_eq!(sub.events(), 2);
//! assert_eq!(sub.total("demo/cache/hits"), 3);
//! ```

pub mod bridge;
pub mod digest;
pub mod prom;
pub mod registry;
pub mod ring;
pub mod subscriber;
pub mod trace;

pub use bridge::BridgeSubscriber;
pub use digest::{Digest, RequestClass};
pub use prom::PromWriter;
pub use registry::{registry, CounterHandle, Registry};
pub use ring::FlightRecorder;
pub use subscriber::{
    CountingSubscriber, Event, EventKind, FanoutSubscriber, NoopSubscriber, StderrSubscriber,
    Subscriber, TraceCtx, Value,
};
pub use trace::{render_chrome_line, TraceWriter};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Fast-path gate: `true` while any sink — a subscriber or the flight
/// recorder — is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed subscriber. Swapped atomically under the lock; emitters
/// clone the `Arc` under a read lock and dispatch outside it, so a swap
/// never blocks on (or races with) an in-flight event.
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
/// Process epoch for event timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Monotonic run-id source, correlating the events of one engine run.
static RUN_ID: AtomicU64 = AtomicU64::new(1);

/// Is any sink installed? One relaxed load — the cost of every emission
/// site when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Is a subscriber installed in the global slot? Unlike [`enabled`],
/// this ignores the flight recorder — the daemon uses it to decide
/// whether to install its progress bridge alongside an always-on ring.
pub fn has_subscriber() -> bool {
    SUBSCRIBER
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .is_some()
}

/// Recompute the fast-path gate after a sink change: emission stays live
/// while either the subscriber slot or the flight recorder holds a sink.
pub(crate) fn refresh_enabled() {
    let has_sub = SUBSCRIBER
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .is_some();
    ENABLED.store(has_sub || ring::recorder().is_some(), Ordering::SeqCst);
}

/// Install `sub` as the global subscriber, replacing any previous one.
/// Safe to call while other threads emit: each in-flight event is
/// delivered to exactly one of the old or the new subscriber.
pub fn install(sub: Arc<dyn Subscriber>) {
    let prev = {
        let mut slot = SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner());
        slot.replace(sub)
    };
    ENABLED.store(true, Ordering::SeqCst);
    if let Some(prev) = prev {
        prev.flush();
    }
}

/// Remove and return the global subscriber (flushing it). Emission sites
/// go quiet again unless the flight recorder is still installed.
pub fn uninstall() -> Option<Arc<dyn Subscriber>> {
    let prev = {
        let mut slot = SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    refresh_enabled();
    if let Some(prev) = &prev {
        prev.flush();
    }
    prev
}

/// Microseconds since the process's first observability action.
pub fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// A fresh run id, for correlating the counter events of one engine run.
pub fn next_run_id() -> u64 {
    RUN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Stable small integer identifying the calling thread (chrome-trace
/// `tid`), assigned in first-use order.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Monotonic trace-id source (one per daemon request / sweep point).
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
/// Monotonic span-id source, shared by every trace in the process.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's active `(trace id, enclosing span id)`.
    /// `(0, _)` means no trace is active — spans then emit without ctx,
    /// exactly as before causal tracing existed.
    static CTX: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// A fresh process-unique trace id.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's active trace id (0 = none).
pub fn current_trace() -> u64 {
    CTX.with(|c| c.get().0)
}

/// Scope guard restoring the previous trace context on drop.
#[must_use = "the trace is active only while the guard lives"]
pub struct TraceGuard {
    prev: (u64, u64),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Activate `trace` on the calling thread until the guard drops: spans
/// created in between allocate span ids and parent-link to each other,
/// and every event they emit carries the ids (see [`TraceCtx`]).
///
/// The guard starts at the trace root (parent span 0) — open one
/// enclosing span right after minting so the trace has exactly one root.
/// Nesting is supported (the previous context is restored on drop); the
/// context is thread-local, so hand the trace id itself across threads
/// and re-activate it there.
pub fn with_trace(trace: u64) -> TraceGuard {
    let prev = CTX.with(|c| c.replace((trace, 0)));
    TraceGuard { prev }
}

/// The ctx instants/counters carry: inside a trace they point at the
/// enclosing span; outside they carry nothing.
fn point_ctx() -> Option<TraceCtx> {
    let (trace, parent) = CTX.with(|c| c.get());
    (trace != 0).then_some(TraceCtx {
        trace,
        span: 0,
        parent,
    })
}

/// Deliver `event` to the flight recorder and the installed subscriber.
fn emit(event: &Event<'_>) {
    ring::record(event);
    let sub = {
        let slot = SUBSCRIBER.read().unwrap_or_else(|p| p.into_inner());
        slot.clone()
    };
    if let Some(sub) = sub {
        sub.event(event);
    }
}

/// Emit a counter event (chrome phase `C`): a named set of series values
/// at one instant.
pub fn counter(cat: &str, name: &str, args: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    emit(&Event {
        cat,
        name,
        kind: EventKind::Counter,
        ts_us: now_us(),
        tid: thread_id(),
        ctx: point_ctx(),
        args,
    });
}

/// Emit an instant event (chrome phase `i`).
pub fn instant(cat: &str, name: &str, args: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    emit(&Event {
        cat,
        name,
        kind: EventKind::Instant,
        ts_us: now_us(),
        tid: thread_id(),
        ctx: point_ctx(),
        args,
    });
}

/// A timed span. Create with [`span`]; emits one complete event (chrome
/// phase `X`) when ended or dropped. When observability is disabled at
/// creation the guard is inert — no clock read, nothing on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    cat: &'static str,
    name: &'static str,
    start_us: f64,
    tid: u64,
    /// `trace == 0` means the span was created outside any trace.
    ctx: TraceCtx,
    live: bool,
}

/// Start a span named `cat`/`name`. Inside an active trace (see
/// [`with_trace`]) the span allocates a process-unique id, records the
/// enclosing span as its parent, and becomes the enclosing span for the
/// scope it lives in — restoring its parent when it ends.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span {
            cat,
            name,
            start_us: 0.0,
            tid: 0,
            ctx: TraceCtx {
                trace: 0,
                span: 0,
                parent: 0,
            },
            live: false,
        };
    }
    let (trace, parent) = CTX.with(|c| c.get());
    let span_id = if trace != 0 {
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        CTX.with(|c| c.set((trace, id)));
        id
    } else {
        0
    };
    Span {
        cat,
        name,
        start_us: now_us(),
        tid: thread_id(),
        ctx: TraceCtx {
            trace,
            span: span_id,
            parent,
        },
        live: true,
    }
}

impl Span {
    /// End the span, attaching `args` to the emitted event.
    pub fn end_with(mut self, args: &[(&str, Value<'_>)]) {
        self.finish(args);
    }

    /// End the span with no args (equivalent to dropping it).
    pub fn end(self) {}

    /// The span's causal ids, when it was created inside a trace.
    pub fn ctx(&self) -> Option<TraceCtx> {
        (self.ctx.trace != 0).then_some(self.ctx)
    }

    fn finish(&mut self, args: &[(&str, Value<'_>)]) {
        if !self.live {
            return;
        }
        self.live = false;
        if self.ctx.trace != 0 {
            // Spans are scoped guards, so LIFO restore is exact: hand the
            // enclosing-span slot back to this span's parent.
            CTX.with(|c| c.set((self.ctx.trace, self.ctx.parent)));
        }
        let end = now_us();
        emit(&Event {
            cat: self.cat,
            name: self.name,
            kind: EventKind::Complete {
                dur_us: (end - self.start_us).max(0.0),
            },
            ts_us: self.start_us,
            tid: self.tid,
            ctx: (self.ctx.trace != 0).then_some(self.ctx),
            args,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that install the global subscriber.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_by_default_and_emits_nothing() {
        let _g = lock();
        uninstall();
        assert!(!enabled());
        // None of these may panic or emit.
        counter("t", "c", &[("v", Value::U64(1))]);
        instant("t", "i", &[]);
        let s = span("t", "s");
        drop(s);
    }

    #[test]
    fn install_enables_and_uninstall_flushes() {
        let _g = lock();
        let sub = Arc::new(CountingSubscriber::default());
        install(sub.clone());
        assert!(enabled());
        counter("t", "c", &[("v", Value::U64(41)), ("w", Value::U64(1))]);
        let s = span("t", "s");
        s.end_with(&[("n", Value::U64(1))]);
        uninstall();
        assert!(!enabled());
        assert_eq!(sub.events(), 2);
        assert_eq!(sub.total("t/c/v"), 41);
        assert_eq!(sub.total("t/s/n"), 1);
        assert_eq!(sub.flushes(), 1);
    }

    #[test]
    fn span_measures_non_negative_duration() {
        let _g = lock();
        let sub = Arc::new(CountingSubscriber::default());
        install(sub.clone());
        let s = span("t", "timed");
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(s);
        uninstall();
        assert_eq!(sub.events(), 1);
        assert!(sub.last_dur_us() >= 1_000.0, "dur {}", sub.last_dur_us());
    }

    #[test]
    fn run_ids_are_unique_and_monotonic() {
        let a = next_run_id();
        let b = next_run_id();
        assert!(b > a);
    }

    #[test]
    fn thread_ids_are_stable_per_thread() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn trace_ctx_threads_through_nested_spans() {
        let _g = lock();

        /// Captures each event's `(name, ctx)` for shape assertions.
        #[derive(Default)]
        struct CtxCapture(std::sync::Mutex<Vec<(String, Option<TraceCtx>)>>);
        impl Subscriber for CtxCapture {
            fn event(&self, event: &Event<'_>) {
                self.0
                    .lock()
                    .unwrap()
                    .push((event.name.to_string(), event.ctx));
            }
        }

        let sub = Arc::new(CtxCapture::default());
        install(sub.clone());
        // Outside any trace: no ctx, no span-id allocation.
        span("t", "untraced").end_with(&[]);
        let trace = next_trace_id();
        {
            let _t = with_trace(trace);
            assert_eq!(current_trace(), trace);
            let root = span("t", "root");
            let root_id = root.ctx().unwrap().span;
            assert_ne!(root_id, 0);
            {
                let child = span("t", "child");
                counter("t", "inner", &[("v", Value::U64(1))]);
                child.end_with(&[]);
            }
            // Parent restored after the child finished (LIFO).
            counter("t", "after", &[]);
            root.end_with(&[]);
        }
        assert_eq!(current_trace(), 0, "guard drop restores the outer ctx");
        span("t", "outside").end_with(&[]);
        uninstall();

        let events = sub.0.lock().unwrap().clone();
        let by_name = |n: &str| {
            events
                .iter()
                .find(|(name, _)| name == n)
                .unwrap_or_else(|| panic!("missing event {n}"))
                .1
        };
        assert_eq!(by_name("untraced"), None);
        assert_eq!(by_name("outside"), None);
        let root = by_name("root").expect("root has ctx");
        assert_eq!((root.trace, root.parent), (trace, 0));
        let child = by_name("child").expect("child has ctx");
        assert_eq!((child.trace, child.parent), (trace, root.span));
        assert_ne!(child.span, root.span);
        let inner = by_name("inner").expect("counter has ctx");
        assert_eq!(
            (inner.trace, inner.span, inner.parent),
            (trace, 0, child.span)
        );
        let after = by_name("after").expect("counter has ctx");
        assert_eq!(after.parent, root.span, "parent restored after child");
    }

    #[test]
    fn end_with_suppresses_drop_emission() {
        let _g = lock();
        let sub = Arc::new(CountingSubscriber::default());
        install(sub.clone());
        let s = span("t", "once");
        s.end_with(&[]);
        uninstall();
        assert_eq!(sub.events(), 1, "end_with + drop must emit exactly once");
    }
}
