//! Mergeable log-linear latency digests and the request-class taxonomy —
//! the `fbf-metrics` layer.
//!
//! The paper's headline claims are *tail* claims: FBF wins by cutting
//! recovery read cost, which shows up at p99/p999 under mixed traffic. A
//! mean hides that; a sorted vector of every sample does not scale to
//! sweep campaigns. [`Digest`] is the middle ground: HdrHistogram-style
//! fixed log-linear bucketing (8 sub-buckets per power of two, covering
//! 1 ns .. 2^40 ns) with *deterministic, associative, commutative* merge —
//! per-worker digests recorded independently combine at sweep gather time
//! into exactly the digest a serial run would have produced.
//!
//! Invariants the property tests pin:
//!
//! * **Exact counts** — `count()` equals the number of `record_ns` calls,
//!   conserved by `merge` (element-wise addition can neither lose nor
//!   invent samples).
//! * **Deterministic merge** — merge is associative and commutative up to
//!   equality of the whole digest, not just its quantiles.
//! * **Bounded error** — every quantile estimate is the *upper edge* of
//!   the sample's bucket: never an under-report, and within one bucket
//!   (~9% relative width) of the sorted-vector oracle.
//!
//! The bucketing math here is the single source of truth: the simulator's
//! [`Histogram`](../../disksim/src/hist.rs) wraps a `Digest`, so engine
//! quantiles, sweep CSVs and Prometheus exposition all agree bit-for-bit.

/// Sub-buckets per power of two — 2^(1/8) spacing ≈ 9% relative resolution.
pub const SUB_BUCKETS: usize = 8;
/// Covers 1 ns .. ~2^40 ns (≈ 18 minutes) of latency.
pub const BUCKETS: usize = 40 * SUB_BUCKETS;

/// Who issued a request, on the virtual clock. Every engine completion is
/// tagged with its worker script's class so latency digests attribute
/// tail behaviour to the traffic that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestClass {
    /// Foreground application I/O (including degraded reads it triggers).
    App,
    /// Planned reconstruction reads of the original repair campaign.
    #[default]
    Recovery,
    /// Escalation rounds: reads issued by re-planned repairs after hard
    /// failures.
    Replan,
    /// Background verification sweeps (proactive scrub passes).
    Scrub,
}

impl RequestClass {
    /// Number of classes (array dimension for per-class state).
    pub const COUNT: usize = 4;

    /// Every class, in index order.
    pub const ALL: [RequestClass; Self::COUNT] = [
        RequestClass::App,
        RequestClass::Recovery,
        RequestClass::Replan,
        RequestClass::Scrub,
    ];

    /// Dense index for per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case label (stable: used as a Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::App => "app",
            RequestClass::Recovery => "recovery",
            RequestClass::Replan => "replan",
            RequestClass::Scrub => "scrub",
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-size mergeable log-linear histogram of nanosecond values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digest {
    counts: Vec<u64>,
    total: u64,
    /// Exact sum of recorded values (Prometheus `_sum`); u128 so a digest
    /// can absorb 2^64 samples of 2^40 ns without overflow.
    sum_ns: u128,
}

impl Default for Digest {
    fn default() -> Self {
        Digest {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
        }
    }
}

impl Digest {
    /// Empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a nanosecond value lands in.
    ///
    /// `log2(ns) * SUB_BUCKETS`, computed in integer arithmetic: the
    /// exponent picks the power-of-two decade, the 3 bits below the
    /// leading bit pick the sub-bucket. Values below 8 ns have fewer than
    /// 3 bits after the leading one, so the fraction is scaled *up*
    /// instead — `(ns - base) * 8 / base` — which keeps the mapping
    /// monotonic instead of collapsing 1..8 ns into the bottom sub-bucket
    /// of each decade.
    #[inline]
    pub fn bucket_of_ns(ns: u64) -> usize {
        let ns = ns.max(1);
        let lz = 63 - ns.leading_zeros() as usize; // floor(log2)
        let base = 1u64 << lz;
        let sub = if lz >= 3 {
            ((ns >> (lz - 3)) - 8) as usize
        } else {
            (((ns - base) << 3) >> lz) as usize
        };
        let sub = sub.min(SUB_BUCKETS - 1);
        (lz * SUB_BUCKETS + sub).min(BUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket, in nanoseconds.
    /// Quantile estimates never under-report because every recorded value
    /// is at most its bucket's upper edge. The last bucket is the
    /// overflow bucket — `bucket_of_ns` clamps everything past the top
    /// decade (up to `u64::MAX`) into it, so its upper edge is
    /// `u64::MAX`, not the top decade's arithmetic edge: reporting ~2^40
    /// for a sample that may be 2^63 would under-report the tail.
    #[inline]
    pub fn bucket_upper_ns(bucket: usize) -> u64 {
        if bucket >= BUCKETS - 1 {
            return u64::MAX;
        }
        let exp = bucket / SUB_BUCKETS;
        let sub = bucket % SUB_BUCKETS;
        let base = 1u64 << exp.min(62);
        // base * (1 + (sub+1)/8), in u128 so small decades don't round
        // the fractional step to zero.
        let edge = base as u128 + (base as u128 * (sub as u128 + 1)) / SUB_BUCKETS as u128;
        edge.min(u64::MAX as u128) as u64
    }

    /// Record one nanosecond value.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_of_ns(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of recorded values, nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// No values recorded?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (0 < q <= 1) as a bucket-upper-edge estimate in
    /// nanoseconds; `None` when empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_ns(i));
            }
        }
        Some(Self::bucket_upper_ns(BUCKETS - 1))
    }

    /// Samples that may exceed `threshold_ns`: the count in every bucket
    /// whose upper edge lies above the threshold. Conservative by design —
    /// a bucket straddling the threshold counts as violating, so an SLO
    /// verdict built on this can flag false positives within one bucket
    /// width but never miss a real violation.
    pub fn count_over_ns(&self, threshold_ns: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| Self::bucket_upper_ns(i) > threshold_ns)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Merge another digest in. Element-wise addition: associative,
    /// commutative, conserves `count()` and `sum_ns()` exactly.
    pub fn merge(&mut self, other: &Digest) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
    }

    /// Occupied buckets in ascending order: `(upper_edge_ns, count)`.
    /// The Prometheus writer turns these into cumulative `le` buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_ns(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest() {
        let d = Digest::new();
        assert_eq!(d.count(), 0);
        assert!(d.is_empty());
        assert_eq!(d.quantile_ns(0.5), None);
        assert_eq!(d.sum_ns(), 0);
    }

    #[test]
    fn count_and_sum_are_exact() {
        let mut d = Digest::new();
        for ns in [1u64, 7, 100, 1_000_000, 1 << 39] {
            d.record_ns(ns);
        }
        assert_eq!(d.count(), 5);
        assert_eq!(d.sum_ns(), 1 + 7 + 100 + 1_000_000 + (1u128 << 39));
    }

    #[test]
    fn merge_conserves_count_and_sum() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        for i in 1..=100u64 {
            a.record_ns(i * 13);
            b.record_ns(i * 977);
        }
        let (ca, cb) = (a.count(), b.count());
        let (sa, sb) = (a.sum_ns(), b.sum_ns());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.sum_ns(), sa + sb);
    }

    #[test]
    fn merge_equals_recording_together() {
        let xs: Vec<u64> = (1..=500).map(|i| i * 31 % 7919 + 1).collect();
        let mut together = Digest::new();
        let mut left = Digest::new();
        let mut right = Digest::new();
        for (i, &x) in xs.iter().enumerate() {
            together.record_ns(x);
            if i % 2 == 0 { &mut left } else { &mut right }.record_ns(x);
        }
        left.merge(&right);
        assert_eq!(left, together, "merge must equal serial recording");
    }

    #[test]
    fn quantile_never_under_reports() {
        let mut d = Digest::new();
        for ns in 1..=4096u64 {
            d.record_ns(ns);
        }
        // The max quantile's estimate must be >= the true max.
        assert!(d.quantile_ns(1.0).unwrap() >= 4096);
    }

    #[test]
    fn count_over_is_conservative() {
        let mut d = Digest::new();
        for _ in 0..90 {
            d.record_ns(1_000); // 1 µs
        }
        for _ in 0..10 {
            d.record_ns(1_000_000_000); // 1 s
        }
        // Everything over 1 ms: exactly the 10 slow samples.
        assert_eq!(d.count_over_ns(1_000_000), 10);
        // A threshold inside the fast bucket flags the whole bucket.
        assert!(d.count_over_ns(999) >= 10);
        // Over the max bucket edge: nothing.
        assert_eq!(d.count_over_ns(u64::MAX), 0);
    }

    #[test]
    fn nonzero_buckets_cover_total() {
        let mut d = Digest::new();
        for ns in [5u64, 5, 70, 900, 1 << 20] {
            d.record_ns(ns);
        }
        let total: u64 = d.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, d.count());
        // Ascending edges.
        let edges: Vec<u64> = d.nonzero_buckets().map(|(e, _)| e).collect();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn u64_max_samples_never_under_report() {
        // bucket_of_ns clamps everything past the top decade into the
        // overflow bucket; its upper edge must dominate any sample that
        // can land there (regression: it used to report ~2^40).
        let mut d = Digest::new();
        d.record_ns(u64::MAX);
        d.record_ns(u64::MAX - 1);
        d.record_ns(1u64 << 50);
        assert_eq!(d.quantile_ns(1.0), Some(u64::MAX));
        assert_eq!(d.quantile_ns(0.5), Some(u64::MAX));
        // The overflow bucket straddles every finite threshold.
        assert_eq!(d.count_over_ns(u64::MAX - 1), 3);
        assert_eq!(d.count_over_ns(u64::MAX), 0);
    }

    #[test]
    fn overflow_bucket_edge_is_max_and_edges_stay_monotonic() {
        assert_eq!(Digest::bucket_upper_ns(BUCKETS - 1), u64::MAX);
        // Tiny decades can share an integer edge; edges never *decrease*,
        // and from 8 ns up (3 sub-bucket bits available) they are strict.
        for b in 1..BUCKETS {
            assert!(
                Digest::bucket_upper_ns(b - 1) <= Digest::bucket_upper_ns(b),
                "edges must be non-decreasing at bucket {b}"
            );
        }
        for b in (3 * SUB_BUCKETS + 1)..BUCKETS {
            assert!(
                Digest::bucket_upper_ns(b - 1) < Digest::bucket_upper_ns(b),
                "edges must be strictly increasing at bucket {b}"
            );
        }
    }

    #[test]
    fn empty_merge_is_identity_both_ways() {
        let mut populated = Digest::new();
        for ns in [3u64, 999, 1 << 35, u64::MAX] {
            populated.record_ns(ns);
        }
        let snapshot = populated.clone();
        populated.merge(&Digest::new());
        assert_eq!(
            populated, snapshot,
            "merging an empty digest must be a no-op"
        );
        let mut empty = Digest::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot, "merging into an empty digest must copy");
    }

    #[test]
    fn class_taxonomy_is_dense_and_stable() {
        for (i, c) in RequestClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(RequestClass::default(), RequestClass::Recovery);
        assert_eq!(RequestClass::App.name(), "app");
        assert_eq!(RequestClass::Scrub.to_string(), "scrub");
    }
}
