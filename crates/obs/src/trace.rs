//! Chrome-trace JSONL export.
//!
//! [`TraceWriter`] serialises each event as one JSON object per line in
//! the [chrome trace event format]. chrome://tracing and Perfetto load a
//! JSON *array*; `scripts/check_trace.py --chrome out.json` wraps the
//! JSONL into `{"traceEvents": [...]}` for that (JSONL itself is easier
//! to validate, stream, and grep). JSON is hand-rolled — the workspace's
//! vendored `serde` is a no-op stub.
//!
//! [chrome trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::subscriber::{Event, EventKind, Subscriber, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A [`Subscriber`] writing chrome-trace events as JSONL.
///
/// Thread-safe: lines are rendered outside the lock and written whole, so
/// events from concurrent sweep workers never interleave. Buffered output
/// is flushed on `flush` (called by `fbf_obs::uninstall`) and on drop.
pub struct TraceWriter {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl TraceWriter {
    /// Create (truncate) `path` and write the process-metadata line.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Wrap an arbitrary writer (tests use `Vec<u8>` via a shared buffer).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        let writer = TraceWriter {
            out: Mutex::new(BufWriter::new(writer)),
        };
        // Metadata record naming the process track, per the trace format.
        let mut line = String::with_capacity(96);
        line.push_str(r#"{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"fbf"}}"#);
        line.push('\n');
        writer.write_line(&line);
        writer
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = out.write_all(line.as_bytes());
    }

    fn render(event: &Event<'_>) -> String {
        render_chrome_line(event)
    }
}

/// Render one event as a chrome-trace JSON object plus trailing newline —
/// the exact line [`TraceWriter`] files end up holding. Public so other
/// sinks (the daemon's progress bridge) stream the same format over the
/// wire that the JSONL files contain on disk.
pub fn render_chrome_line(event: &Event<'_>) -> String {
    {
        let mut line = String::with_capacity(160);
        line.push_str("{\"name\":");
        push_json_str(&mut line, event.name);
        line.push_str(",\"cat\":");
        push_json_str(&mut line, event.cat);
        match event.kind {
            EventKind::Complete { dur_us } => {
                line.push_str(",\"ph\":\"X\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
                line.push_str(",\"dur\":");
                push_json_f64(&mut line, dur_us);
            }
            EventKind::Instant => {
                line.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
            }
            EventKind::Counter => {
                line.push_str(",\"ph\":\"C\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
            }
        }
        line.push_str(",\"pid\":1,\"tid\":");
        line.push_str(&event.tid.to_string());
        line.push_str(",\"args\":{");
        for (i, (key, value)) in event.args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_str(&mut line, key);
            line.push(':');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::I64(v) => line.push_str(&v.to_string()),
                Value::F64(v) => push_json_f64(&mut line, *v),
                Value::Str(v) => push_json_str(&mut line, v),
            }
        }
        line.push_str("}}\n");
        line
    }
}

impl Subscriber for TraceWriter {
    fn event(&self, event: &Event<'_>) {
        let line = Self::render(event);
        self.write_line(&line);
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = out.flush();
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number; non-finite values (invalid JSON) become 0.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` target tests can read back after the writer is dropped.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(f: impl FnOnce(&TraceWriter)) -> String {
        let buf = SharedBuf::default();
        let writer = TraceWriter::from_writer(Box::new(buf.clone()));
        f(&writer);
        drop(writer);
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn emits_metadata_then_one_line_per_event() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "engine",
                name: "cache",
                kind: EventKind::Counter,
                ts_us: 12.5,
                tid: 3,
                args: &[
                    ("hits", Value::U64(10)),
                    ("ratio", Value::F64(0.25)),
                    ("policy", Value::Str("fbf")),
                ],
            });
            w.event(&Event {
                cat: "sweep",
                name: "point",
                kind: EventKind::Complete { dur_us: 42.0 },
                ts_us: 1.0,
                tid: 0,
                args: &[],
            });
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""ph":"M""#));
        assert!(lines[1].contains(r#""name":"cache""#));
        assert!(lines[1].contains(r#""ph":"C""#));
        assert!(lines[1].contains(r#""hits":10"#));
        assert!(lines[1].contains(r#""ratio":0.250"#));
        assert!(lines[1].contains(r#""policy":"fbf""#));
        assert!(lines[2].contains(r#""ph":"X""#));
        assert!(lines[2].contains(r#""dur":42.000"#));
        // Every line is a single JSON object: balanced braces, no inner
        // newlines (lines() already guarantees the latter).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "{line}");
        }
    }

    #[test]
    fn instant_carries_scope() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "plan",
                name: "warm",
                kind: EventKind::Instant,
                ts_us: 5.0,
                tid: 1,
                args: &[],
            });
        });
        assert!(out.lines().nth(1).unwrap().contains(r#""ph":"i","s":"t""#));
    }

    #[test]
    fn non_finite_numbers_stay_valid_json() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "t",
                name: "n",
                kind: EventKind::Counter,
                ts_us: 0.0,
                tid: 0,
                args: &[("bad", Value::F64(f64::NAN))],
            });
        });
        assert!(out.lines().nth(1).unwrap().contains(r#""bad":0"#));
    }
}
