//! Chrome-trace JSONL export.
//!
//! [`TraceWriter`] serialises each event as one JSON object per line in
//! the [chrome trace event format]. chrome://tracing and Perfetto load a
//! JSON *array*; `scripts/check_trace.py --chrome out.json` wraps the
//! JSONL into `{"traceEvents": [...]}` for that (JSONL itself is easier
//! to validate, stream, and grep). JSON is hand-rolled — the workspace's
//! vendored `serde` is a no-op stub.
//!
//! [chrome trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::subscriber::{Event, EventKind, Subscriber, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A [`Subscriber`] writing chrome-trace events as JSONL.
///
/// Thread-safe: lines are rendered outside the lock and written whole, so
/// events from concurrent sweep workers never interleave. Buffered output
/// is flushed on `flush` (called by `fbf_obs::uninstall`) and on drop.
pub struct TraceWriter {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl TraceWriter {
    /// Create (truncate) `path` and write the process-metadata line.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Wrap an arbitrary writer (tests use `Vec<u8>` via a shared buffer).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        let writer = TraceWriter {
            out: Mutex::new(BufWriter::new(writer)),
        };
        // Metadata record naming the process track, per the trace format.
        let mut line = String::with_capacity(96);
        line.push_str(r#"{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"fbf"}}"#);
        line.push('\n');
        writer.write_line(&line);
        writer
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = out.write_all(line.as_bytes());
    }

    fn render(event: &Event<'_>) -> String {
        render_chrome_line(event)
    }
}

/// Render one event as a chrome-trace JSON object plus trailing newline —
/// the exact line [`TraceWriter`] files end up holding. Public so other
/// sinks (the daemon's progress bridge) stream the same format over the
/// wire that the JSONL files contain on disk.
pub fn render_chrome_line(event: &Event<'_>) -> String {
    {
        let mut line = String::with_capacity(160);
        line.push_str("{\"name\":");
        push_json_str(&mut line, event.name);
        line.push_str(",\"cat\":");
        push_json_str(&mut line, event.cat);
        match event.kind {
            EventKind::Complete { dur_us } => {
                line.push_str(",\"ph\":\"X\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
                line.push_str(",\"dur\":");
                push_json_f64(&mut line, dur_us);
            }
            EventKind::Instant => {
                line.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
            }
            EventKind::Counter => {
                line.push_str(",\"ph\":\"C\"");
                line.push_str(",\"ts\":");
                push_json_f64(&mut line, event.ts_us);
            }
        }
        line.push_str(",\"pid\":1,\"tid\":");
        line.push_str(&event.tid.to_string());
        line.push_str(",\"args\":{");
        let mut first = true;
        // Causal ids first, under reserved names the emission sites never
        // use as counter args (check_trace.py --flows keys off these).
        if let Some(ctx) = event.ctx {
            line.push_str("\"trace_id\":");
            line.push_str(&ctx.trace.to_string());
            if ctx.span != 0 {
                line.push_str(",\"span_id\":");
                line.push_str(&ctx.span.to_string());
            }
            line.push_str(",\"parent_id\":");
            line.push_str(&ctx.parent.to_string());
            first = false;
        }
        for (key, value) in event.args.iter() {
            if !first {
                line.push(',');
            }
            first = false;
            push_json_str(&mut line, key);
            line.push(':');
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::I64(v) => line.push_str(&v.to_string()),
                Value::F64(v) => push_json_f64(&mut line, *v),
                Value::Str(v) => push_json_str(&mut line, v),
            }
        }
        line.push_str("}}\n");
        line
    }
}

/// Render the chrome-trace *flow* records that make the causal arrows
/// visible in chrome://tracing: every traced span opens a flow under its
/// own span id (`ph:"s"`), and every traced child span steps its parent's
/// flow (`ph:"t"`), binding the arrow parent→child. All flow records
/// share one name/cat (the format matches flows by name+cat+id) and carry
/// the trace id as an arg so `check_trace.py --flows` can bucket them.
/// Returns the rendered lines (possibly empty) for `event`.
pub fn render_flow_lines(event: &Event<'_>) -> String {
    let (Some(ctx), EventKind::Complete { .. }) = (event.ctx, event.kind) else {
        return String::new();
    };
    if ctx.span == 0 {
        return String::new();
    }
    let mut lines = String::with_capacity(192);
    let mut flow = |ph: char, id: u64| {
        lines.push_str("{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"");
        lines.push(ph);
        lines.push_str("\",\"ts\":");
        push_json_f64(&mut lines, event.ts_us);
        lines.push_str(",\"pid\":1,\"tid\":");
        lines.push_str(&event.tid.to_string());
        lines.push_str(",\"id\":");
        lines.push_str(&id.to_string());
        lines.push_str(",\"args\":{\"trace_id\":");
        lines.push_str(&ctx.trace.to_string());
        lines.push_str("}}\n");
    };
    flow('s', ctx.span);
    if ctx.parent != 0 {
        flow('t', ctx.parent);
    }
    lines
}

impl Subscriber for TraceWriter {
    fn event(&self, event: &Event<'_>) {
        let mut line = Self::render(event);
        // Traced spans additionally emit flow records so the causal tree
        // renders as arrows; appended to the same write so a span and its
        // flows land adjacent even under concurrent workers.
        line.push_str(&render_flow_lines(event));
        self.write_line(&line);
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = out.flush();
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number; non-finite values (invalid JSON) become 0.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` target tests can read back after the writer is dropped.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(f: impl FnOnce(&TraceWriter)) -> String {
        let buf = SharedBuf::default();
        let writer = TraceWriter::from_writer(Box::new(buf.clone()));
        f(&writer);
        drop(writer);
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn emits_metadata_then_one_line_per_event() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "engine",
                name: "cache",
                kind: EventKind::Counter,
                ts_us: 12.5,
                tid: 3,
                ctx: None,
                args: &[
                    ("hits", Value::U64(10)),
                    ("ratio", Value::F64(0.25)),
                    ("policy", Value::Str("fbf")),
                ],
            });
            w.event(&Event {
                cat: "sweep",
                name: "point",
                kind: EventKind::Complete { dur_us: 42.0 },
                ts_us: 1.0,
                tid: 0,
                ctx: None,
                args: &[],
            });
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""ph":"M""#));
        assert!(lines[1].contains(r#""name":"cache""#));
        assert!(lines[1].contains(r#""ph":"C""#));
        assert!(lines[1].contains(r#""hits":10"#));
        assert!(lines[1].contains(r#""ratio":0.250"#));
        assert!(lines[1].contains(r#""policy":"fbf""#));
        assert!(lines[2].contains(r#""ph":"X""#));
        assert!(lines[2].contains(r#""dur":42.000"#));
        // Every line is a single JSON object: balanced braces, no inner
        // newlines (lines() already guarantees the latter).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "{line}");
        }
    }

    #[test]
    fn instant_carries_scope() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "plan",
                name: "warm",
                kind: EventKind::Instant,
                ts_us: 5.0,
                tid: 1,
                ctx: None,
                args: &[],
            });
        });
        assert!(out.lines().nth(1).unwrap().contains(r#""ph":"i","s":"t""#));
    }

    #[test]
    fn traced_span_renders_ctx_args_and_flow_records() {
        use crate::subscriber::TraceCtx;
        let out = capture(|w| {
            w.event(&Event {
                cat: "plan",
                name: "cold",
                kind: EventKind::Complete { dur_us: 9.0 },
                ts_us: 2.0,
                tid: 1,
                ctx: Some(TraceCtx {
                    trace: 41,
                    span: 7,
                    parent: 3,
                }),
                args: &[("stripes", Value::U64(4))],
            });
        });
        let lines: Vec<&str> = out.lines().collect();
        // metadata + span + flow-start + flow-step
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[1].contains(r#""trace_id":41,"span_id":7,"parent_id":3"#));
        assert!(lines[1].contains(r#""stripes":4"#));
        assert!(lines[2].contains(r#""ph":"s""#) && lines[2].contains(r#""id":7"#));
        assert!(lines[3].contains(r#""ph":"t""#) && lines[3].contains(r#""id":3"#));
        for flow in &lines[2..] {
            assert!(flow.contains(r#""cat":"flow""#));
            assert!(flow.contains(r#""trace_id":41"#));
        }
    }

    #[test]
    fn root_span_and_point_events_emit_minimal_ctx() {
        use crate::subscriber::TraceCtx;
        // A root span (parent 0) opens its flow but steps nothing.
        let root = render_flow_lines(&Event {
            cat: "daemon",
            name: "repair",
            kind: EventKind::Complete { dur_us: 1.0 },
            ts_us: 0.0,
            tid: 0,
            ctx: Some(TraceCtx {
                trace: 5,
                span: 9,
                parent: 0,
            }),
            args: &[],
        });
        assert_eq!(root.lines().count(), 1);
        assert!(root.contains(r#""ph":"s""#));
        // Counters/instants (span 0) carry ids in args but no flows.
        let point = Event {
            cat: "engine",
            name: "cache",
            kind: EventKind::Counter,
            ts_us: 0.0,
            tid: 0,
            ctx: Some(TraceCtx {
                trace: 5,
                span: 0,
                parent: 9,
            }),
            args: &[],
        };
        let line = render_chrome_line(&point);
        assert!(line.contains(r#""trace_id":5,"parent_id":9"#));
        assert!(!line.contains("span_id"));
        assert!(render_flow_lines(&point).is_empty());
    }

    #[test]
    fn non_finite_numbers_stay_valid_json() {
        let out = capture(|w| {
            w.event(&Event {
                cat: "t",
                name: "n",
                kind: EventKind::Counter,
                ts_us: 0.0,
                tid: 0,
                ctx: None,
                args: &[("bad", Value::F64(f64::NAN))],
            });
        });
        assert!(out.lines().nth(1).unwrap().contains(r#""bad":0"#));
    }
}
