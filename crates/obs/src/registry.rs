//! Process-wide counter/gauge registry.
//!
//! Events capture *moments*; the registry accumulates *totals* across a
//! whole process run — plan-store cold/warm hits, demotions, per-priority
//! fetch counts — cheap enough to bump unconditionally from cold paths
//! (one atomic add), snapshot-able at exit for summary tables. Counters
//! are created on first use and never removed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A named set of monotonically updated `u64` cells.
#[derive(Debug, Default)]
pub struct Registry {
    cells: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
}

/// A handle to one registry cell: bump it without re-hashing the name.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the cell to `v` if `v` is larger (high-water gauge).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrite the cell (last-write-wins gauge).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The handle for `name`, creating the cell at 0 on first use.
    pub fn counter(&self, name: &str) -> CounterHandle {
        {
            let cells = self.cells.read().unwrap_or_else(|p| p.into_inner());
            if let Some(cell) = cells.get(name) {
                return CounterHandle(Arc::clone(cell));
            }
        }
        let mut cells = self.cells.write().unwrap_or_else(|p| p.into_inner());
        let cell = cells.entry(name.to_string()).or_default();
        CounterHandle(Arc::clone(cell))
    }

    /// Shorthand: `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Shorthand: `counter(name).max(v)`.
    pub fn max(&self, name: &str, v: u64) {
        self.counter(name).max(v);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        let cells = self.cells.read().unwrap_or_else(|p| p.into_inner());
        cells
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sorted snapshot of every cell.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let cells = self.cells.read().unwrap_or_else(|p| p.into_inner());
        cells
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Zero every cell (handles stay valid). Tests use this to isolate
    /// runs sharing the global registry.
    pub fn reset(&self) {
        let cells = self.cells.read().unwrap_or_else(|p| p.into_inner());
        for cell in cells.values() {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::new();
        reg.add("b/second", 2);
        reg.add("a/first", 1);
        reg.add("b/second", 3);
        assert_eq!(reg.get("a/first"), 1);
        assert_eq!(reg.get("b/second"), 5);
        assert_eq!(reg.get("missing"), 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![("a/first".to_string(), 1), ("b/second".to_string(), 5)]
        );
    }

    #[test]
    fn handle_survives_reset_and_max_is_high_water() {
        let reg = Registry::new();
        let h = reg.counter("depth");
        h.max(4);
        h.max(2);
        assert_eq!(h.get(), 4);
        reg.reset();
        assert_eq!(h.get(), 0);
        h.add(7);
        assert_eq!(reg.get("depth"), 7, "handle still points at the cell");
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.add("hot", 1);
                    }
                });
            }
        });
        assert_eq!(reg.get("hot"), 8_000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
    }
}
