//! Prometheus text-exposition snapshot writer.
//!
//! The counterpart of [`TraceWriter`](crate::trace::TraceWriter) for
//! *state* instead of *events*: where the JSONL trace records what
//! happened when, a Prometheus snapshot records the totals a scrape would
//! see — counters, gauges, and latency histograms rendered from
//! [`Digest`]s. The output follows the text exposition format version
//! 0.0.4 (`# HELP` / `# TYPE` headers, `_bucket{le=...}` cumulative
//! histogram series with `+Inf`, `_sum` / `_count`), so it loads into any
//! Prometheus-compatible stack — and `scripts/check_trace.py --prom`
//! validates the same invariants in CI: legal metric-name charset and
//! monotone cumulative buckets.
//!
//! Hand-rolled like every serializer in this workspace (the vendored
//! serde is an offline stub); values format through Rust's shortest-
//! round-trip `f64` Display, so snapshots are deterministic.

use crate::digest::Digest;

/// Is `name` a legal Prometheus metric (or label) name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels additionally must not use `:`, which
/// none of ours do).
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Accumulates one exposition snapshot. Metrics append in call order;
/// [`into_string`](Self::into_string) yields the final text.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        assert!(valid_metric_name(name), "illegal metric name {name:?}");
        debug_assert!(
            !help.contains('\n'),
            "HELP text must be single-line: {help:?}"
        );
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &str, value: f64) {
        self.out.push_str(name);
        self.out.push_str(labels);
        self.out.push(' ');
        // Shortest round-trip Display; integral values print bare.
        self.out.push_str(&format!("{value}"));
        self.out.push('\n');
    }

    /// A monotone counter (`_total` naming is the caller's business).
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        self.sample(name, "", value);
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, "", value);
    }

    /// A gauge with one label dimension: one `# TYPE` header, one sample
    /// per `(label_value, value)` pair.
    pub fn gauge_per(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, f64)]) {
        assert!(valid_metric_name(label), "illegal label name {label:?}");
        self.header(name, help, "gauge");
        for &(value_label, value) in samples {
            self.sample(name, &format!("{{{label}=\"{value_label}\"}}"), value);
        }
    }

    /// Latency histograms from [`Digest`]s, one series per label value.
    /// Digests record nanoseconds; exposition follows the Prometheus
    /// convention of seconds. Only occupied buckets are emitted (plus the
    /// mandatory `+Inf`); cumulative counts are monotone by construction.
    pub fn histogram(&mut self, name: &str, help: &str, label: &str, series: &[(&str, &Digest)]) {
        assert!(valid_metric_name(label), "illegal label name {label:?}");
        self.header(name, help, "histogram");
        for &(value_label, digest) in series {
            let mut cumulative = 0u64;
            for (edge_ns, count) in digest.nonzero_buckets() {
                cumulative += count;
                let le = edge_ns as f64 / 1e9;
                self.sample(
                    &format!("{name}_bucket"),
                    &format!("{{{label}=\"{value_label}\",le=\"{le}\"}}"),
                    cumulative as f64,
                );
            }
            self.sample(
                &format!("{name}_bucket"),
                &format!("{{{label}=\"{value_label}\",le=\"+Inf\"}}"),
                digest.count() as f64,
            );
            self.sample(
                &format!("{name}_sum"),
                &format!("{{{label}=\"{value_label}\"}}"),
                digest.sum_ns() as f64 / 1e9,
            );
            self.sample(
                &format!("{name}_count"),
                &format!("{{{label}=\"{value_label}\"}}"),
                digest.count() as f64,
            );
        }
    }

    /// The finished exposition text.
    pub fn into_string(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_charset() {
        assert!(valid_metric_name("fbf_disk_reads_total"));
        assert!(valid_metric_name("_private"));
        assert!(valid_metric_name("ns:subsystem_metric"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name("has space"));
    }

    #[test]
    fn counter_and_gauge_shape() {
        let mut w = PromWriter::new();
        w.counter("fbf_reads_total", "reads", 42.0);
        w.gauge("fbf_hit_ratio", "hit ratio", 0.75);
        let s = w.into_string();
        assert!(s.contains("# HELP fbf_reads_total reads\n"));
        assert!(s.contains("# TYPE fbf_reads_total counter\n"));
        assert!(s.contains("\nfbf_reads_total 42\n"));
        assert!(s.contains("fbf_hit_ratio 0.75\n"));
    }

    #[test]
    fn labeled_gauges() {
        let mut w = PromWriter::new();
        w.gauge_per(
            "fbf_class_p99_ms",
            "per-class p99",
            "class",
            &[("app", 1.5), ("recovery", 12.0)],
        );
        let s = w.into_string();
        assert!(s.contains("fbf_class_p99_ms{class=\"app\"} 1.5\n"));
        assert!(s.contains("fbf_class_p99_ms{class=\"recovery\"} 12\n"));
        assert_eq!(s.matches("# TYPE").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let mut d = Digest::new();
        for ns in [1_000u64, 1_000, 50_000, 2_000_000] {
            d.record_ns(ns);
        }
        let mut w = PromWriter::new();
        w.histogram("fbf_lat_seconds", "latency", "class", &[("recovery", &d)]);
        let s = w.into_string();
        assert!(s.contains("# TYPE fbf_lat_seconds histogram"));
        assert!(s.contains("le=\"+Inf\"}} 4\n".replace("}}", "}").as_str()));
        assert!(s.contains("fbf_lat_seconds_count{class=\"recovery\"} 4"));
        // Cumulative bucket values never decrease.
        let mut last = 0.0f64;
        for line in s.lines().filter(|l| l.contains("_bucket{")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be monotone: {line}");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "illegal metric name")]
    fn bad_metric_name_panics() {
        PromWriter::new().counter("has-dash", "x", 1.0);
    }
}
