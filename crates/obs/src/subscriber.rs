//! The [`Subscriber`] trait and the stock implementations: no-op, stderr
//! pretty-printer, counting (for tests/reconciliation), and fan-out.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A typed event argument value.
///
/// Borrowed — events are built on the stack at the emission site and
/// handed to the subscriber by reference; nothing allocates unless the
/// subscriber itself chooses to (e.g. [`CountingSubscriber`] keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned counter-ish value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value (durations, ratios).
    F64(f64),
    /// Short label (policy name, plan source, …).
    Str(&'a str),
}

impl Value<'_> {
    /// The value as `u64` if it is numerically representable as one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }
}

/// Causal context stamped on events emitted inside an active trace.
///
/// A trace is minted per unit of externally-attributable work — one
/// daemon `repair` request, one sweep point — via
/// [`with_trace`](crate::with_trace). Within it, every span allocates a
/// process-unique `span` id and records the enclosing span as `parent`
/// (0 = root of the trace); instants and counters carry `span: 0` and
/// the enclosing span as `parent`. [`render_chrome_line`] serialises the
/// ids as `trace_id`/`span_id`/`parent_id` args, and `check_trace.py
/// --flows` reassembles them into one rooted tree per trace.
///
/// Kept out of [`Event::args`] on purpose: [`CountingSubscriber`] sums
/// every `U64` arg, and ids summing into reconciliation ledgers would
/// break the exact counter↔metrics contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id (never 0 in an emitted ctx).
    pub trace: u64,
    /// This span's own id (0 for instants and counters).
    pub span: u64,
    /// The enclosing span's id (0 = root of the trace).
    pub parent: u64,
}

/// What kind of chrome-trace record an event maps to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A completed span (`ph: "X"`): `ts_us` is the start, `dur_us` the
    /// wall-clock length.
    Complete {
        /// Span duration in microseconds.
        dur_us: f64,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`): each arg is one series value.
    Counter,
}

/// One observability event, borrowed from the emission site.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Category (`engine`, `plan`, `sweep`, …) — groups related events.
    pub cat: &'a str,
    /// Event name within the category.
    pub name: &'a str,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Microseconds since the process obs epoch (span start for spans).
    pub ts_us: f64,
    /// Small stable id of the emitting thread.
    pub tid: u64,
    /// Causal ids when the event fired inside an active trace.
    pub ctx: Option<TraceCtx>,
    /// Typed key→value payload.
    pub args: &'a [(&'a str, Value<'a>)],
}

/// Receives every event emitted while installed. Implementations must be
/// cheap and non-blocking-ish: they run inline at the emission site,
/// possibly from many sweep workers at once.
pub trait Subscriber: Send + Sync {
    /// Handle one event.
    fn event(&self, event: &Event<'_>);
    /// Flush any buffered output; called on uninstall/replace.
    fn flush(&self) {}
}

/// Discards everything. Useful to measure dispatch overhead in isolation.
#[derive(Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn event(&self, _event: &Event<'_>) {}
}

/// Pretty-prints each event to stderr, one line per event — the `--obs`
/// CLI flag. Lines are built in full and written under a lock so
/// concurrent sweep workers never interleave mid-line.
#[derive(Debug, Default)]
pub struct StderrSubscriber {
    gate: Mutex<()>,
}

impl Subscriber for StderrSubscriber {
    fn event(&self, event: &Event<'_>) {
        let mut line = String::with_capacity(96);
        let ts_ms = event.ts_us / 1_000.0;
        match event.kind {
            EventKind::Complete { dur_us } => {
                line.push_str(&format!(
                    "[obs {ts_ms:>10.3}ms t{}] {}/{} took {:.3}ms",
                    event.tid,
                    event.cat,
                    event.name,
                    dur_us / 1_000.0
                ));
            }
            EventKind::Instant => {
                line.push_str(&format!(
                    "[obs {ts_ms:>10.3}ms t{}] {}/{}",
                    event.tid, event.cat, event.name
                ));
            }
            EventKind::Counter => {
                line.push_str(&format!(
                    "[obs {ts_ms:>10.3}ms t{}] {}/{} =",
                    event.tid, event.cat, event.name
                ));
            }
        }
        for (key, value) in event.args {
            match value {
                Value::U64(v) => line.push_str(&format!(" {key}={v}")),
                Value::I64(v) => line.push_str(&format!(" {key}={v}")),
                Value::F64(v) => line.push_str(&format!(" {key}={v:.3}")),
                Value::Str(v) => line.push_str(&format!(" {key}={v}")),
            }
        }
        line.push('\n');
        let _g = self.gate.lock().unwrap_or_else(|p| p.into_inner());
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

/// Counts events and sums every `U64` argument under the key
/// `"{cat}/{name}/{arg}"`. The reconciliation workhorse: tests compare
/// these sums against `Metrics`/`CacheStats` totals without parsing JSON.
#[derive(Debug, Default)]
pub struct CountingSubscriber {
    events: AtomicU64,
    flushes: AtomicU64,
    last_dur_us: Mutex<f64>,
    totals: Mutex<BTreeMap<String, u64>>,
}

impl CountingSubscriber {
    /// Total events received.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Times `flush` was called.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::SeqCst)
    }

    /// Duration of the most recent span event, in microseconds.
    pub fn last_dur_us(&self) -> f64 {
        *self.last_dur_us.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sum of the `U64` values recorded under `"{cat}/{name}/{arg}"`.
    pub fn total(&self, key: &str) -> u64 {
        self.totals
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of every summed key.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        self.totals
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

impl Subscriber for CountingSubscriber {
    fn event(&self, event: &Event<'_>) {
        self.events.fetch_add(1, Ordering::SeqCst);
        if let EventKind::Complete { dur_us } = event.kind {
            *self.last_dur_us.lock().unwrap_or_else(|p| p.into_inner()) = dur_us;
        }
        if event.args.is_empty() {
            return;
        }
        let mut totals = self.totals.lock().unwrap_or_else(|p| p.into_inner());
        for (key, value) in event.args {
            if let Some(v) = value.as_u64() {
                *totals
                    .entry(format!("{}/{}/{}", event.cat, event.name, key))
                    .or_insert(0) += v;
            }
        }
    }

    fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::SeqCst);
    }
}

/// Delivers every event to each inner subscriber in order — lets the CLI
/// combine `--trace` (file) with `--obs` (stderr).
pub struct FanoutSubscriber {
    inner: Vec<std::sync::Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// Fan out to `inner`, in order.
    pub fn new(inner: Vec<std::sync::Arc<dyn Subscriber>>) -> Self {
        FanoutSubscriber { inner }
    }
}

impl Subscriber for FanoutSubscriber {
    fn event(&self, event: &Event<'_>) {
        for sub in &self.inner {
            sub.event(event);
        }
    }

    fn flush(&self) {
        for sub in &self.inner {
            sub.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn value_as_u64_conversions() {
        assert_eq!(Value::U64(7).as_u64(), Some(7));
        assert_eq!(Value::I64(7).as_u64(), Some(7));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::F64(3.0).as_u64(), Some(3));
        assert_eq!(Value::F64(3.5).as_u64(), None);
        assert_eq!(Value::Str("x").as_u64(), None);
    }

    #[test]
    fn counting_sums_by_cat_name_arg() {
        let sub = CountingSubscriber::default();
        fn ev<'a>(args: &'a [(&'a str, Value<'a>)]) -> Event<'a> {
            Event {
                cat: "engine",
                name: "cache",
                kind: EventKind::Counter,
                ts_us: 0.0,
                tid: 0,
                ctx: None,
                args,
            }
        }
        sub.event(&ev(&[("hits", Value::U64(10)), ("misses", Value::U64(2))]));
        sub.event(&ev(&[
            ("hits", Value::U64(5)),
            ("policy", Value::Str("fbf")),
        ]));
        assert_eq!(sub.events(), 2);
        assert_eq!(sub.total("engine/cache/hits"), 15);
        assert_eq!(sub.total("engine/cache/misses"), 2);
        assert_eq!(
            sub.total("engine/cache/policy"),
            0,
            "strings are not summed"
        );
    }

    #[test]
    fn fanout_delivers_to_all() {
        let a = Arc::new(CountingSubscriber::default());
        let b = Arc::new(CountingSubscriber::default());
        let fan = FanoutSubscriber::new(vec![a.clone(), b.clone()]);
        fan.event(&Event {
            cat: "t",
            name: "x",
            kind: EventKind::Instant,
            ts_us: 0.0,
            tid: 0,
            ctx: None,
            args: &[],
        });
        fan.flush();
        assert_eq!(a.events(), 1);
        assert_eq!(b.events(), 1);
        assert_eq!(a.flushes(), 1);
        assert_eq!(b.flushes(), 1);
    }
}
