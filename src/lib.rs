//! # fbf — Favorable Block First (ICPP 2017) reproduction, facade crate
//!
//! The crate root is the stable public surface: experiment configuration,
//! the pluggable storage backend, the repair daemon, metrics, and the
//! sweep/report helpers the examples and binaries are written against.
//!
//! ```no_run
//! use fbf::{run_experiment, ExperimentConfig, PolicyKind};
//!
//! let cfg = ExperimentConfig::builder()
//!     .policy(PolicyKind::Fbf)
//!     .cache_mb(64)
//!     .build()
//!     .unwrap();
//! let metrics = run_experiment(&cfg).unwrap();
//! println!("hit ratio {:.3}", metrics.hit_ratio);
//! ```
//!
//! Real I/O goes through the [`StorageBackend`] trait — [`SimBackend`]
//! mirrors the discrete-event simulator chunk for chunk, [`FileBackend`]
//! does the same against real files — and `fbfd` (see [`serve`]) exposes
//! repair as a service over a unix or TCP socket.
//!
//! The workspace layers underneath (codes, cache policies, disk
//! simulator, recovery planner, workload generators, observability) stay
//! reachable through the module aliases below for anything not
//! re-exported here, but those paths are implementation surface: they
//! move between releases, the root does not.

// Deep module aliases. Hidden from docs: reach through them when a layer
// internal is genuinely needed, but prefer the root re-exports — deep
// paths are not covered by the facade's stability intent.
#[doc(hidden)]
pub use fbf_cache as cache;
#[doc(hidden)]
pub use fbf_codes as codes;
#[doc(hidden)]
pub use fbf_core as core;
#[doc(hidden)]
pub use fbf_disksim as disksim;
#[doc(hidden)]
pub use fbf_obs as obs;
#[doc(hidden)]
pub use fbf_recovery as recovery;
#[doc(hidden)]
pub use fbf_workload as workload;

// Cache policies under test.
pub use fbf_cache::PolicyKind;

// Erasure-code vocabulary every experiment references.
pub use fbf_codes::{Cell, ChunkId, CodeSpec, Stripe, StripeCode};

// Experiment configuration, execution, metrics, daemon, reporting.
pub use fbf_core::report;
pub use fbf_core::{
    code_from_name, file_backend_for, mttdl_gain, mttdl_hours, mttdl_years, policy_from_name,
    prometheus_snapshot, run_experiment, run_experiment_on, run_experiment_with_errors,
    run_planned, run_planned_on, run_rebuild, scheme_from_name, serve, sim_backend_for, sweep,
    sweep_with_store, verify_campaign, ClassLatency, ConfigError, DaemonClient, DaemonHandle,
    DaemonOptions, ExperimentConfig, ExperimentConfigBuilder, JobState, Json, JsonError, Metrics,
    PlanSource, PlanStore, Progress, ProgressSnapshot, RebuildOutcome, RebuildSpec,
    ReliabilityParams, RunError, ServerAddr, SloSpec, SloVerdict, SweepPoint, Table, VerifyReport,
    METRICS_SCHEMA_VERSION,
};

// Storage backends and the simulator types that surface in reports.
pub use fbf_disksim::{
    ArrayMapping, BackendDiskStats, BackendError, CacheSharing, FaultPlan, FileBackend, Placement,
    RequestClass, RunReport, SimBackend, SimTime, StorageBackend,
};

// Recovery-scheme generator selection and rebuild fairness policies.
pub use fbf_recovery::{Fairness, SchemeKind};

// Campaign generation, trace (de)serialisation, daemon load generation.
pub use fbf_workload::{
    client_trace_ids, generate_errors, parse_trace, render_trace, shard_campaign, validate_against,
    ErrorGenConfig, LoadReport,
};
