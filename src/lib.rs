//! # fbf — Favorable Block First (ICPP 2017) reproduction, facade crate
//!
//! This crate re-exports the whole workspace behind one dependency so the
//! examples, integration tests and downstream users can write
//! `use fbf::...` and reach every layer:
//!
//! * [`codes`] — erasure codes (TIP, HDD1, Triple-STAR, STAR, plus RDP and
//!   EVENODD for RAID-6 generality), parity chains, encode/decode,
//!   structural analysis;
//! * [`cache`] — ten buffer-cache replacement policies: the paper's five
//!   (FIFO, LRU, LFU, ARC, FBF) and the other §II-B citations (LRU-K, 2Q,
//!   LRFU, FBR, VDF);
//! * [`disksim`] — the event-driven disk-array simulator standing in for
//!   DiskSim 4.0 (queued disks, scheduling disciplines, latency
//!   histograms, straggler injection);
//! * [`recovery`] — partial-stripe error model, recovery-scheme generators,
//!   priority dictionary, format-memoised controller, scrubbing, degraded
//!   reads, whole-disk rebuild, joint-decode fallback;
//! * [`workload`] — synthetic error-trace and application-I/O generators
//!   matching §IV-A;
//! * [`core`] — experiment configuration, metrics, sweep drivers,
//!   campaign verification and the MTTDL reliability model that
//!   regenerate the paper's figures and tables;
//! * [`obs`] — structured tracing and event counters (spans, instants,
//!   counter snapshots) with a chrome://tracing-compatible JSONL exporter;
//!   zero-cost when no subscriber is installed.

pub use fbf_cache as cache;
pub use fbf_codes as codes;
pub use fbf_core as core;
pub use fbf_disksim as disksim;
pub use fbf_obs as obs;
pub use fbf_recovery as recovery;
pub use fbf_workload as workload;
