//! `fbfd` — the FBF repair daemon, as its own binary.
//!
//! Equivalent to `fbf serve`, for deployments that ship the daemon
//! without the rest of the CLI:
//!
//! ```text
//! fbfd [--socket <path> | --tcp <addr:port>] [--daemon-workers N] [--retain N] [--ring-cap N]
//! ```
//!
//! Listens on a unix socket (default `$TMPDIR/fbfd.sock`) or TCP, runs
//! repair jobs on a worker pool, and exits when a client sends
//! `shutdown` (`fbf client shutdown`). The wire protocol is documented
//! on the daemon module; `fbf client` is the reference client.
//!
//! `--ring-cap N` sizes the always-on flight recorder's per-thread ring
//! (events kept per thread; same as setting `FBF_RING_CAP`). Dumps land
//! in `$FBF_FLIGHT_DIR` when set, and are always retrievable live via
//! `fbf client dump`.

use fbf::{DaemonOptions, ServerAddr};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut workers: Option<String> = None;
    let mut retain: Option<String> = None;
    let mut ring_cap: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let (flag, inline) = match args[i].split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (args[i].as_str(), None),
        };
        let take = |slot: &mut Option<String>, i: &mut usize| -> bool {
            match inline.clone().or_else(|| {
                args.get(*i + 1).map(|v| {
                    *i += 1;
                    v.clone()
                })
            }) {
                Some(v) => {
                    *slot = Some(v);
                    true
                }
                None => false,
            }
        };
        let ok = match flag {
            "--socket" => take(&mut socket, &mut i),
            "--tcp" => take(&mut tcp, &mut i),
            "--daemon-workers" | "--workers" => take(&mut workers, &mut i),
            "--retain" => take(&mut retain, &mut i),
            "--ring-cap" => take(&mut ring_cap, &mut i),
            "--help" | "-h" => {
                eprintln!(
                    "usage: fbfd [--socket <path> | --tcp <addr:port>] \
                     [--daemon-workers N] [--retain N] [--ring-cap N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        };
        if !ok {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        i += 1;
    }

    let addr = match (socket, tcp) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --tcp are mutually exclusive");
            std::process::exit(2);
        }
        (Some(path), None) => ServerAddr::Unix(path.into()),
        (None, Some(a)) => match a.parse() {
            Ok(sock) => ServerAddr::Tcp(sock),
            Err(e) => {
                eprintln!("bad --tcp address `{a}`: {e}");
                std::process::exit(2);
            }
        },
        (None, None) => ServerAddr::Unix(std::env::temp_dir().join("fbfd.sock")),
    };
    let mut opts = DaemonOptions::default();
    if let Some(w) = workers {
        match w.parse() {
            Ok(n) => opts.workers = n,
            Err(_) => {
                eprintln!("bad worker count `{w}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(r) = retain {
        match r.parse() {
            Ok(n) => opts.retain = n,
            Err(_) => {
                eprintln!("bad retention cap `{r}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(cap) = ring_cap {
        if cap.parse::<usize>().is_err() {
            eprintln!("bad ring capacity `{cap}`");
            std::process::exit(2);
        }
        // serve() installs the default recorder, which reads this env var.
        std::env::set_var("FBF_RING_CAP", cap);
    }

    let handle = match fbf::serve(&addr, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot serve: {e}");
            std::process::exit(1);
        }
    };
    let shown = match handle.addr() {
        ServerAddr::Unix(p) => format!("unix:{}", p.display()),
        ServerAddr::Tcp(a) => format!("tcp:{a}"),
    };
    eprintln!("fbfd listening on {shown} ({} workers)", opts.workers);
    handle.wait();
}
