//! `fbf` — command-line front end for the FBF reproduction.
//!
//! ```text
//! fbf layout <code> <p>                     print a stripe layout and chain summary
//! fbf plan <code> <p> <col> <row> <len>     show recovery schemes for one error
//! fbf trace <stripes> <count> [seed]        emit a synthetic error trace (stdout)
//! fbf run [--key value ...]                 one experiment, all metrics
//! fbf replay <file> [--key value ...]       replay an error trace instead of drawing one
//! fbf sweep [--key value ...]               cache-size sweep across the five policies
//! fbf rebuild [--disks N] [--key value ...]  whole-disk declustered rebuild campaign
//! fbf serve [--socket P | --tcp A]          run the repair daemon in the foreground
//! fbf client [--socket P | --tcp A] <cmd>   talk to a running daemon
//! fbf scrub <code> <p>                      silent-corruption scrub demo
//! fbf mttdl <disks> <mttr_hours>            reliability model for a 3DFT array
//! ```
//!
//! Experiment flags (`run`/`replay`/`sweep`, also `client repair`/`load`):
//! `--code tip|hdd1|triplestar|star|rdp|evenodd`, `--p 7`,
//! `--policy fifo|lru|lfu|arc|fbf|...`, `--scheme typical|fbf|greedy`,
//! `--cache-mb 64`, `--chunk-kb 32`, `--stripes 4096`, `--errors 512`,
//! `--workers 128`, `--seed N`, `--gen-threads N`, plus fault injection:
//! `--media ‰`, `--transient ‰`, `--fault-seed N`, `--kill <disk>@<ms>`,
//! `--slow <disk>@<permille>`. The pre-daemon `key=value` spelling still
//! works as a deprecated alias (a warning points at the flag form).
//!
//! `--json` (any command) emits the result as one JSON object on stdout
//! instead of human-readable text. Global observability flags:
//! `--trace <path>` streams a chrome://tracing-compatible JSONL run trace
//! to `<path>`; `--obs` pretty-prints events to stderr. `--metrics <path>`
//! writes a Prometheus text-exposition snapshot of `run`/`sweep` results
//! (validated by `scripts/check_trace.py --prom`).
//!
//! Daemon transport selection (`serve`/`client`): `--socket <path>` for a
//! unix socket (default `$TMPDIR/fbfd.sock`), `--tcp <addr:port>` for TCP.

use fbf::disksim::{DiskKill, FaultPlan, SimTime, SlowDisk};
use fbf::recovery::{scheme::generate, PartialStripeError, PriorityDictionary, SchemeKind};
use fbf::report::f;
use fbf::workload::{
    client_trace_ids, generate_errors, parse_trace, render_trace, shard_campaign, validate_against,
    ErrorGenConfig, LoadReport,
};
use fbf::PolicyKind;
use fbf::{
    run_experiment, run_experiment_with_errors, sweep, DaemonClient, DaemonOptions,
    ExperimentConfig, ExperimentConfigBuilder, Json, ReliabilityParams, ServerAddr, Table,
};
use fbf::{CodeSpec, StripeCode};
use std::time::{Duration, Instant};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, obs, metrics_out, json) = match install_obs_flags(&raw) {
        Ok(v) => v,
        Err(rc) => std::process::exit(rc),
    };
    let metrics_out = metrics_out.as_deref();
    let code = match args.first().map(String::as_str) {
        Some("layout") => cmd_layout(&args[1..], json),
        Some("plan") => cmd_plan(&args[1..], json),
        Some("trace") => cmd_trace(&args[1..], json),
        Some("run") => cmd_run(&args[1..], obs, metrics_out, json),
        Some("replay") => cmd_replay(&args[1..], obs, metrics_out, json),
        Some("sweep") => cmd_sweep(&args[1..], obs, metrics_out, json),
        Some("rebuild") => cmd_rebuild(&args[1..], obs, json),
        Some("serve") => cmd_serve(&args[1..], json),
        Some("client") => cmd_client(&args[1..], json),
        Some("scrub") => cmd_scrub(&args[1..], json),
        Some("mttdl") => cmd_mttdl(&args[1..], json),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            2
        }
    };
    // `exit` skips destructors, so flush the trace subscriber explicitly.
    if obs {
        fbf::obs::uninstall();
    }
    std::process::exit(code);
}

/// Pull `--trace <path>` / `--trace=<path>` / `--obs` / `--metrics <path>`
/// / `--json` out of the argument list (they may appear anywhere) and
/// install the matching subscriber. Returns the remaining arguments,
/// whether event observability is on, the Prometheus snapshot path if
/// requested, and whether JSON output was selected.
#[allow(clippy::type_complexity)]
fn install_obs_flags(raw: &[String]) -> Result<(Vec<String>, bool, Option<String>, bool), i32> {
    let mut args = Vec::with_capacity(raw.len());
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut stderr = false;
    let mut json = false;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--obs" => stderr = true,
            "--json" => json = true,
            "--trace" => {
                let Some(p) = raw.get(i + 1) else {
                    eprintln!("--trace needs a file path");
                    return Err(2);
                };
                trace = Some(p.clone());
                i += 1;
            }
            "--metrics" => {
                let Some(p) = raw.get(i + 1) else {
                    eprintln!("--metrics needs a file path");
                    return Err(2);
                };
                metrics = Some(p.clone());
                i += 1;
            }
            s => {
                if let Some(p) = s.strip_prefix("--trace=") {
                    trace = Some(p.to_string());
                } else if let Some(p) = s.strip_prefix("--metrics=") {
                    metrics = Some(p.to_string());
                } else {
                    args.push(raw[i].clone());
                }
            }
        }
        i += 1;
    }

    let mut sinks: Vec<std::sync::Arc<dyn fbf::obs::Subscriber>> = Vec::new();
    if let Some(path) = trace {
        match fbf::obs::TraceWriter::create(std::path::Path::new(&path)) {
            Ok(w) => {
                eprintln!("(trace streaming to {path})");
                sinks.push(std::sync::Arc::new(w));
            }
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return Err(1);
            }
        }
    }
    if stderr {
        sinks.push(std::sync::Arc::new(fbf::obs::StderrSubscriber::default()));
    }
    if sinks.is_empty() {
        return Ok((args, false, metrics, json));
    }
    let sub: std::sync::Arc<dyn fbf::obs::Subscriber> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        std::sync::Arc::new(fbf::obs::FanoutSubscriber::new(sinks))
    };
    fbf::obs::install(sub);
    Ok((args, true, metrics, json))
}

/// Write a Prometheus snapshot of `points` to `path` (best-effort: an I/O
/// failure is reported but does not change the command's exit code — the
/// experiment itself succeeded).
fn write_metrics_snapshot(path: &str, points: &[fbf::SweepPoint]) {
    match std::fs::write(path, fbf::prometheus_snapshot(points)) {
        Ok(()) => eprintln!("(metrics snapshot written to {path})"),
        Err(e) => eprintln!("cannot write metrics snapshot {path}: {e}"),
    }
}

fn print_usage() {
    eprintln!(
        "fbf — Favorable Block First reproduction CLI\n\n\
         usage:\n\
         \u{20}  fbf layout <code> <p>\n\
         \u{20}  fbf plan <code> <p> <col> <first_row> <len> [scheme]\n\
         \u{20}  fbf trace <stripes> <count> [seed]\n\
         \u{20}  fbf run [--key value ...] [--trace-in <file>]\n\
         \u{20}  fbf replay <file> [--key value ...]\n\
         \u{20}  fbf sweep [--key value ...]\n\
         \u{20}  fbf rebuild [--disks N] [--placement clustered|rotated|declustered]\n\
         \u{20}      [--failed-disk D] [--cap N] [--fairness rr|drr] [--campaigns N]\n\
         \u{20}      [--app-reads N] [--key value ...]\n\
         \u{20}  fbf serve [--socket <path> | --tcp <addr>] [--daemon-workers N]\n\
         \u{20}  fbf client [--socket <path> | --tcp <addr>] \\\n\
         \u{20}      ping | repair [...] | rebuild [...] | status <job> | jobs |\n\
         \u{20}      read <job> <stripe> <row> <col> | metrics | watch | load [...] | shutdown\n\
         \u{20}  fbf scrub <code> <p>\n\
         \u{20}  fbf mttdl <disks> <mttr_hours>\n\n\
         experiment flags: --code --p --policy --scheme --cache-mb --chunk-kb\n\
         \u{20}  --stripes --errors --workers --seed --gen-threads\n\
         \u{20}  --media --transient --fault-seed --kill d@ms --slow d@permille\n\
         \u{20}  (key=value spelling is a deprecated alias)\n\n\
         global flags: --json (machine-readable stdout), --trace <path>\n\
         \u{20}  (JSONL run trace), --obs (event log on stderr), --metrics <path>\n\
         \u{20}  (Prometheus snapshot of run/sweep results)\n\n\
         codes: tip hdd1 triplestar star rdp evenodd\n\
         policies: fifo lru lfu arc fbf lru-k 2q lrfu fbr vdf"
    );
}

fn parse_code(s: &str) -> Option<CodeSpec> {
    fbf::code_from_name(s)
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    fbf::policy_from_name(s)
}

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    fbf::scheme_from_name(s)
}

/// Normalise experiment arguments: typed `--key value` / `--key=value`
/// flags become `key=value` pairs (dashes to underscores), and bare
/// legacy `key=value` pairs pass through with a one-time deprecation
/// warning. Anything else is rejected.
fn normalize_config_args(args: &[String]) -> Result<Vec<String>, i32> {
    let mut out = Vec::with_capacity(args.len());
    let mut warned = false;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(flag) = arg.strip_prefix("--") {
            let (key, value) = match flag.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => {
                    let Some(v) = args.get(i + 1) else {
                        eprintln!("--{flag} needs a value");
                        return Err(2);
                    };
                    i += 1;
                    (flag.to_string(), v.clone())
                }
            };
            out.push(format!("{}={}", key.replace('-', "_"), value));
        } else if arg.contains('=') {
            if !warned {
                eprintln!(
                    "warning: `key=value` arguments are deprecated; \
                     use `--key value` (e.g. `--{}`)",
                    arg.replacen('=', " ", 1)
                );
                warned = true;
            }
            out.push(arg.clone());
        } else {
            eprintln!("unexpected argument `{arg}` (expected --key value)");
            return Err(2);
        }
        i += 1;
    }
    Ok(out)
}

/// Parse normalised `key=value` pairs into an [`ExperimentConfigBuilder`]
/// (starting from the paper's defaults). Validation happens in
/// [`build_or_report`], so a bad combination fails with a typed message
/// before any work starts.
fn parse_kv(args: &[String]) -> Result<ExperimentConfigBuilder, i32> {
    let mut builder = ExperimentConfig::builder();
    let mut faults = FaultPlan::none();
    for arg in args {
        let Some((k, v)) = arg.split_once('=') else {
            eprintln!("expected key=value, got `{arg}`");
            return Err(2);
        };
        let next = match k {
            "code" => parse_code(v).map(|c| builder.code(c)),
            "p" => v.parse().ok().map(|p| builder.p(p)),
            "policy" => parse_policy(v).map(|p| builder.policy(p)),
            "scheme" => parse_scheme(v).map(|s| builder.scheme(s)),
            "cache" | "cache_mb" => v.parse().ok().map(|c| builder.cache_mb(c)),
            "chunk_kb" => v.parse().ok().map(|c| builder.chunk_kb(c)),
            "stripes" => v.parse().ok().map(|s| builder.stripes(s)),
            "errors" => v.parse().ok().map(|e| builder.error_count(e)),
            "workers" => v.parse().ok().map(|w| builder.workers(w)),
            "decode_batch" => v.parse().ok().map(|d| builder.decode_batch(d)),
            "seed" => v.parse().ok().map(|s| builder.seed(s)),
            "gen_threads" => v.parse().ok().map(|g| builder.gen_threads(g)),
            // Fault injection (all optional; any one activates the plan).
            "media" => v.parse().ok().map(|m| {
                faults.media_per_mille = m;
                builder
            }),
            "transient" => v.parse().ok().map(|t| {
                faults.transient_per_mille = t;
                builder
            }),
            "fault_seed" => v.parse().ok().map(|s| {
                faults.seed = s;
                builder
            }),
            // kill=<disk>@<ms>: the disk dies at that (virtual) instant.
            "kill" => parse_at(v).map(|(disk, ms)| {
                faults.disk_kill = Some(DiskKill {
                    disk,
                    at: SimTime::from_millis(ms),
                });
                builder
            }),
            // slow=<disk>@<permille>: service time scaled by ‰ (2000 = 2x).
            "slow" => parse_at(v).and_then(|(disk, scale)| {
                u32::try_from(scale).ok().map(|scale_milli| {
                    faults.straggler = Some(SlowDisk { disk, scale_milli });
                    builder
                })
            }),
            _ => {
                eprintln!("unknown key `{k}`");
                return Err(2);
            }
        };
        let Some(b) = next else {
            eprintln!("bad value for `{k}`: `{v}`");
            return Err(2);
        };
        builder = b;
    }
    if faults.is_active() {
        builder = builder.faults(faults);
    }
    Ok(builder)
}

/// Parse `<disk>@<n>` (e.g. `kill=3@40`, `slow=2@1500`).
fn parse_at(v: &str) -> Option<(u32, u64)> {
    let (disk, n) = v.split_once('@')?;
    Some((disk.parse().ok()?, n.parse().ok()?))
}

/// Pull a valued flag (`--name <v>` / `--name=<v>`) out of an argument
/// list, returning the remaining arguments and the value.
fn split_flag(args: &[String], name: &str) -> Result<(Vec<String>, Option<String>), i32> {
    let long = format!("--{name}");
    let prefixed = format!("--{name}=");
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        let s = args[i].as_str();
        if s == long {
            let Some(v) = args.get(i + 1) else {
                eprintln!("{long} needs a value");
                return Err(2);
            };
            value = Some(v.clone());
            i += 1;
        } else if let Some(v) = s.strip_prefix(&prefixed) {
            value = Some(v.to_string());
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Ok((rest, value))
}

/// Pull a boolean flag (`--name`) out of an argument list.
fn split_switch(args: &[String], name: &str) -> (Vec<String>, bool) {
    let long = format!("--{name}");
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            if a.as_str() == long {
                found = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, found)
}

/// Finish a builder, turning a `ConfigError` into exit code 2.
fn build_or_report(builder: ExperimentConfigBuilder) -> Result<ExperimentConfig, i32> {
    builder.build().map_err(|e| {
        eprintln!("invalid configuration: {e}");
        2
    })
}

fn print_json(value: &Json) {
    println!("{}", value.render());
}

fn cmd_layout(args: &[String], json: bool) -> i32 {
    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let mut per_dir = [0usize; 3];
    for chain in code.chains() {
        per_dir[chain.direction.index()] += 1;
    }
    let avg_len: f64 =
        code.chains().iter().map(|c| c.len() as f64).sum::<f64>() / code.chains().len() as f64;
    if json {
        print_json(&Json::obj([
            ("code", Json::Str(code.spec().name().to_string())),
            ("rows", Json::Num(code.rows() as f64)),
            ("disks", Json::Num(code.cols() as f64)),
            (
                "fault_tolerance",
                Json::Num(code.spec().fault_tolerance() as f64),
            ),
            (
                "chains",
                Json::obj([
                    ("horizontal", Json::Num(per_dir[0] as f64)),
                    ("diagonal", Json::Num(per_dir[1] as f64)),
                    ("anti_diagonal", Json::Num(per_dir[2] as f64)),
                ]),
            ),
            ("avg_chain_len", Json::Num(avg_len)),
        ]));
        return 0;
    }
    println!(
        "{}  ({} rows x {} disks, tolerates {} failures)",
        code.describe(),
        code.rows(),
        code.cols(),
        code.spec().fault_tolerance()
    );
    println!("{}", code.layout().ascii_art());
    println!(
        "chains: {} horizontal, {} diagonal, {} anti-diagonal",
        per_dir[0], per_dir[1], per_dir[2]
    );
    println!("average chain length: {avg_len:.2} members");
    0
}

/// Build a code from two positional args, reporting errors to stderr.
fn build_code(args: &[String]) -> Result<StripeCode, i32> {
    let spec = args.first().and_then(|s| parse_code(s)).ok_or_else(|| {
        eprintln!("expected a code name (tip/hdd1/triplestar/star/rdp/evenodd)");
        2
    })?;
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
        eprintln!("expected a prime p");
        2
    })?;
    StripeCode::build(spec, p).map_err(|e| {
        eprintln!("cannot build {spec}: {e}");
        1
    })
}

fn cmd_plan(args: &[String], json: bool) -> i32 {
    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let (Some(col), Some(first), Some(len)) = (
        args.get(2).and_then(|s| s.parse::<usize>().ok()),
        args.get(3).and_then(|s| s.parse::<usize>().ok()),
        args.get(4).and_then(|s| s.parse::<usize>().ok()),
    ) else {
        eprintln!("usage: fbf plan <code> <p> <col> <first_row> <len> [scheme]");
        return 2;
    };
    let kind = args
        .get(5)
        .and_then(|s| parse_scheme(s))
        .unwrap_or(SchemeKind::FbfCycling);

    let error = match PartialStripeError::new(&code, 0, col, first, len) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("invalid error: {e}");
            return 1;
        }
    };
    let scheme = match generate(&code, &error, kind) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scheme generation failed: {e}");
            return 1;
        }
    };
    if json {
        let repairs: Vec<Json> = scheme
            .repairs
            .iter()
            .map(|r| {
                Json::obj([
                    ("target", Json::Str(r.target.to_string())),
                    ("direction", Json::Str(r.option.direction.to_string())),
                    (
                        "reads",
                        Json::Arr(
                            r.option
                                .reads
                                .iter()
                                .map(|c| Json::Str(c.to_string()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        print_json(&Json::obj([
            ("code", Json::Str(code.spec().name().to_string())),
            ("scheme", Json::Str(kind.name().to_string())),
            ("repairs", Json::Arr(repairs)),
            ("read_slots", Json::Num(scheme.total_read_slots() as f64)),
            ("unique_reads", Json::Num(scheme.unique_reads() as f64)),
            ("shared_savings", Json::Num(scheme.shared_savings() as f64)),
        ]));
        return 0;
    }
    println!("{} / {} scheme for {error}:", code.describe(), kind.name());
    for r in &scheme.repairs {
        let reads: Vec<String> = r.option.reads.iter().map(|c| c.to_string()).collect();
        println!(
            "  {} via {:>13}: {}",
            r.target,
            r.option.direction.to_string(),
            reads.join(" ")
        );
    }
    println!(
        "totals: {} slots / {} distinct / {} saved",
        scheme.total_read_slots(),
        scheme.unique_reads(),
        scheme.shared_savings()
    );
    let dict = PriorityDictionary::from_scheme(&scheme);
    for prio in (1..=3).rev() {
        let cells = dict.cells_with_priority(0, prio);
        if !cells.is_empty() {
            let names: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
            println!("priority {prio}: {}", names.join(", "));
        }
    }
    0
}

fn cmd_trace(args: &[String], json: bool) -> i32 {
    let (Some(stripes), Some(count)) = (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<usize>().ok()),
    ) else {
        eprintln!("usage: fbf trace <stripes> <count> [seed]");
        return 2;
    };
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0x5EED);
    // Trace geometry bound: use TIP(p=13) so traces replay on any shipped
    // code with p >= 13 — or adjust to taste.
    let code = StripeCode::build(CodeSpec::Tip, 13).expect("13 is prime");
    let group = generate_errors(&code, &ErrorGenConfig::paper_default(stripes, count, seed));
    if json {
        print_json(&Json::obj([
            ("stripes", Json::Num(stripes as f64)),
            ("count", Json::Num(group.len() as f64)),
            ("seed", Json::Num(seed as f64)),
            ("trace", Json::Str(render_trace(&group))),
        ]));
        return 0;
    }
    print!("{}", render_trace(&group));
    0
}

/// Load, parse, and geometry-check an error trace file against `cfg`.
fn load_trace(path: &str, cfg: &ExperimentConfig) -> Result<fbf::recovery::ErrorGroup, i32> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read trace {path}: {e}");
        1
    })?;
    let errors = parse_trace(&text).map_err(|e| {
        eprintln!("bad trace {path}: {e}");
        2
    })?;
    let code = StripeCode::build(cfg.code, cfg.p).map_err(|e| {
        eprintln!("cannot build {}: {e}", cfg.code.name());
        2
    })?;
    validate_against(&errors, &code, cfg.stripes as usize).map_err(|e| {
        eprintln!("trace {path} does not fit the configured geometry: {e}");
        2
    })?;
    Ok(errors)
}

fn cmd_run(args: &[String], obs: bool, metrics_out: Option<&str>, json: bool) -> i32 {
    let (args, trace_in) = match split_flag(args, "trace-in") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    run_with(&args, trace_in.as_deref(), obs, metrics_out, json)
}

fn cmd_replay(args: &[String], obs: bool, metrics_out: Option<&str>, json: bool) -> i32 {
    let Some((path, rest)) = args.split_first() else {
        eprintln!("usage: fbf replay <trace-file> [--key value ...]");
        return 2;
    };
    if path.starts_with("--") {
        eprintln!("usage: fbf replay <trace-file> [--key value ...]");
        return 2;
    }
    run_with(rest, Some(path), obs, metrics_out, json)
}

fn run_with(
    args: &[String],
    trace_in: Option<&str>,
    obs: bool,
    metrics_out: Option<&str>,
    json: bool,
) -> i32 {
    let cfg = match normalize_config_args(args)
        .and_then(|kv| parse_kv(&kv))
        .map(|b| b.obs(obs))
        .and_then(build_or_report)
    {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    if !json {
        println!("running {}", cfg.describe());
    }
    let result = match trace_in {
        Some(path) => {
            let errors = match load_trace(path, &cfg) {
                Ok(g) => g,
                Err(rc) => return rc,
            };
            if !json {
                println!("  (replaying {} errors from {path})", errors.len());
            }
            run_experiment_with_errors(&cfg, errors)
        }
        None => run_experiment(&cfg),
    };
    match result {
        Ok(m) => {
            if let Some(path) = metrics_out {
                write_metrics_snapshot(
                    path,
                    &[fbf::SweepPoint {
                        config: cfg,
                        metrics: m.clone(),
                    }],
                );
            }
            if json {
                println!("{}", m.to_json());
                return 0;
            }
            println!("  hit ratio          : {:.4}", m.hit_ratio);
            println!("  disk reads         : {}", m.disk_reads);
            println!("  avg response       : {:.3} ms", m.avg_response_ms);
            println!("  reconstruction time: {:.3} s", m.reconstruction_s);
            println!(
                "  FBF overhead       : {:.4} ms/stripe ({:.3}%)",
                m.overhead_per_stripe_ms, m.overhead_pct
            );
            println!("  chunks recovered   : {}", m.chunks_recovered);
            if m.slo.evaluated {
                println!(
                    "  slo                : {}",
                    if m.slo.pass { "PASS" } else { "FAIL" }
                );
            }
            if !m.faults.is_empty() || m.stripes_lost > 0 {
                println!(
                    "  faults             : {} media, {} transient ({} retries, {} exhausted), {} dead-disk",
                    m.faults.media_errors,
                    m.faults.transient_faults,
                    m.faults.retries,
                    m.faults.retries_exhausted,
                    m.faults.dead_disk_reads
                );
                println!(
                    "  escalation         : {} replans over {} rounds, {} stripes lost",
                    m.replans, m.replan_rounds, m.stripes_lost
                );
                for dl in &m.data_loss {
                    println!(
                        "    DATA LOSS stripe {}: damage spans {} columns",
                        dl.stripe, dl.columns
                    );
                }
            }
            0
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            1
        }
    }
}

/// `fbf rebuild`: simulate a whole-disk failure on an N-disk array and
/// drive the declustered rebuild scheduler over every affected stripe,
/// with foreground app reads sharing the spindles. Rebuild-specific
/// flags come out first; everything left is ordinary experiment flags.
fn cmd_rebuild(args: &[String], obs: bool, json: bool) -> i32 {
    let mut rest = args.to_vec();
    let mut flags = Vec::with_capacity(8);
    for name in [
        "disks",
        "placement",
        "placement-seed",
        "failed-disk",
        "cap",
        "fairness",
        "campaigns",
        "app-reads",
    ] {
        match split_flag(&rest, name) {
            Ok((r, v)) => {
                rest = r;
                flags.push(v);
            }
            Err(rc) => return rc,
        }
    }
    let [disks, placement, placement_seed, failed_disk, cap, fairness, campaigns, app_reads]: [Option<String>; 8] = flags.try_into().expect("eight rebuild flags");

    let base = match normalize_config_args(&rest)
        .and_then(|kv| parse_kv(&kv))
        .map(|b| b.obs(obs))
        .and_then(build_or_report)
    {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    // A whole array is wider than one stripe: default to the paper's
    // 100-disk scale.
    let disks = match disks.as_deref().map(str::parse::<usize>) {
        None => 100,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("bad --disks (positive integer)");
            return 2;
        }
    };
    let mut spec = fbf::RebuildSpec::new(base, disks);
    match placement.as_deref() {
        None | Some("declustered") => {}
        Some("clustered") | Some("fixed") => spec.placement = fbf::Placement::Fixed,
        Some("rotated") => spec.placement = fbf::Placement::Rotated,
        Some(other) => {
            eprintln!("unknown placement `{other}` (clustered, rotated, declustered)");
            return 2;
        }
    }
    if let Some(s) = placement_seed {
        let Ok(seed) = s.parse::<u64>() else {
            eprintln!("bad --placement-seed: `{s}`");
            return 2;
        };
        if matches!(spec.placement, fbf::Placement::Declustered { .. }) {
            spec.placement = fbf::Placement::Declustered { seed };
        } else {
            eprintln!("--placement-seed only applies to declustered placement");
            return 2;
        }
    }
    if let Some(d) = failed_disk {
        match d.parse::<usize>() {
            Ok(n) if n < disks => spec.failed_disk = n,
            _ => {
                eprintln!("bad --failed-disk: `{d}` (0..{disks})");
                return 2;
            }
        }
    }
    if let Some(c) = cap {
        match c.parse::<u32>() {
            Ok(n) if n > 0 => spec.per_disk_cap = n,
            _ => {
                eprintln!("bad --cap: `{c}` (positive chunk reads per disk per wave)");
                return 2;
            }
        }
    }
    if let Some(f) = fairness {
        match fbf::Fairness::parse(&f) {
            Some(fair) => spec.fairness = fair,
            None => {
                eprintln!("unknown fairness `{f}` (rr or drr)");
                return 2;
            }
        }
    }
    if let Some(c) = campaigns {
        match c.parse::<usize>() {
            Ok(n) if n > 0 => spec.campaigns = n,
            _ => {
                eprintln!("bad --campaigns: `{c}`");
                return 2;
            }
        }
    }
    if let Some(a) = app_reads {
        match a.parse::<usize>() {
            Ok(n) => spec.app_reads_per_wave = n,
            Err(_) => {
                eprintln!("bad --app-reads: `{a}`");
                return 2;
            }
        }
    }

    if !json {
        println!(
            "rebuilding disk {} of {} ({} placement, {} fairness): {}",
            spec.failed_disk,
            spec.disks,
            spec.placement.name(),
            spec.fairness.name(),
            spec.base.describe()
        );
    }
    match fbf::run_rebuild(&spec) {
        Ok(outcome) => {
            if json {
                println!("{}", outcome.to_json());
                return i32::from(!outcome.failed_stripes.is_empty());
            }
            println!(
                "  stripes affected   : {} ({} rebuilt, {} failed)",
                outcome.stripes_affected,
                outcome.stripes_rebuilt,
                outcome.failed_stripes.len()
            );
            println!("  waves              : {}", outcome.waves);
            println!("  reconstruction time: {:.3} s", outcome.reconstruction_s);
            println!(
                "  rebuild-read skew  : {:.3} (max/mean)",
                outcome.rebuild_skew
            );
            if let Some(p99) = outcome.app_p99_ms {
                println!(
                    "  app read p99       : {p99:.3} ms (p999 {})",
                    outcome
                        .app_p999_ms
                        .map_or("n/a".to_string(), |v| format!("{v:.3} ms"))
                );
            }
            i32::from(!outcome.failed_stripes.is_empty())
        }
        Err(e) => {
            eprintln!("rebuild failed: {e}");
            1
        }
    }
}

fn cmd_sweep(args: &[String], obs: bool, metrics_out: Option<&str>, json: bool) -> i32 {
    let builder = match normalize_config_args(args)
        .and_then(|kv| parse_kv(&kv))
        .map(|b| b.obs(obs))
    {
        Ok(b) => b,
        Err(rc) => return rc,
    };
    let base = match build_or_report(builder) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let sizes = [2usize, 8, 32, 64, 128, 256, 512, 2048];
    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .flat_map(|&mb| {
            PolicyKind::ALL.iter().map(move |&policy| {
                builder
                    .policy(policy)
                    .cache_mb(mb)
                    .build()
                    .expect("validated base stays valid across the grid")
            })
        })
        .collect();
    let points = match sweep(&configs, 0) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return 1;
        }
    };
    if let Some(path) = metrics_out {
        write_metrics_snapshot(path, &points);
    }
    if json {
        let rows: Vec<Json> = points
            .iter()
            .map(|pt| {
                let metrics =
                    Json::parse(&pt.metrics.to_json()).expect("Metrics::to_json emits valid JSON");
                Json::obj([
                    ("cache_mb", Json::Num(pt.config.cache_mb as f64)),
                    ("policy", Json::Str(pt.config.policy.name().to_string())),
                    ("metrics", metrics),
                ])
            })
            .collect();
        print_json(&Json::obj([
            ("code", Json::Str(base.code.name().to_string())),
            ("p", Json::Num(base.p as f64)),
            ("points", Json::Arr(rows)),
        ]));
        return 0;
    }
    let mut table = Table::new(
        format!("hit ratio — {}(p={})", base.code.name(), base.p),
        &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
    );
    for (i, &mb) in sizes.iter().enumerate() {
        let row = &points[i * 5..(i + 1) * 5];
        table.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)))
                .collect(),
        );
    }
    println!("{}", table.render());
    0
}

/// Resolve the daemon address from `--socket` / `--tcp`, defaulting to a
/// unix socket at `$TMPDIR/fbfd.sock`.
fn split_addr(args: &[String]) -> Result<(Vec<String>, ServerAddr), i32> {
    let (args, socket) = split_flag(args, "socket")?;
    let (args, tcp) = split_flag(&args, "tcp")?;
    match (socket, tcp) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --tcp are mutually exclusive");
            Err(2)
        }
        (Some(path), None) => Ok((args, ServerAddr::Unix(path.into()))),
        (None, Some(addr)) => match addr.parse() {
            Ok(sock) => Ok((args, ServerAddr::Tcp(sock))),
            Err(e) => {
                eprintln!("bad --tcp address `{addr}`: {e}");
                Err(2)
            }
        },
        (None, None) => Ok((
            args,
            ServerAddr::Unix(std::env::temp_dir().join("fbfd.sock")),
        )),
    }
}

fn addr_display(addr: &ServerAddr) -> String {
    match addr {
        ServerAddr::Unix(p) => format!("unix:{}", p.display()),
        ServerAddr::Tcp(a) => format!("tcp:{a}"),
    }
}

fn cmd_serve(args: &[String], json: bool) -> i32 {
    let (args, addr) = match split_addr(args) {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let (args, workers) = match split_flag(&args, "daemon-workers") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    if let Some(stray) = args.first() {
        eprintln!("unexpected argument `{stray}`");
        return 2;
    }
    let mut opts = DaemonOptions::default();
    if let Some(w) = workers {
        match w.parse() {
            Ok(n) => opts.workers = n,
            Err(_) => {
                eprintln!("bad --daemon-workers `{w}`");
                return 2;
            }
        }
    }
    let handle = match fbf::serve(&addr, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot serve on {}: {e}", addr_display(&addr));
            return 1;
        }
    };
    if json {
        print_json(&Json::obj([
            ("listening", Json::Str(addr_display(handle.addr()))),
            ("workers", Json::Num(opts.workers as f64)),
        ]));
    } else {
        println!(
            "fbfd listening on {} ({} workers); stop with `fbf client shutdown`",
            addr_display(handle.addr()),
            opts.workers
        );
    }
    handle.wait();
    0
}

/// Collect experiment flags into the daemon's `config` override object.
/// Only daemon-supported keys are accepted (fault flags need the local
/// engine; the daemon's executor is explicit about what it honours).
fn overrides_from_args(args: &[String]) -> Result<Json, i32> {
    let kv = normalize_config_args(args)?;
    let mut pairs: Vec<(String, Json)> = Vec::new();
    for item in &kv {
        let Some((k, v)) = item.split_once('=') else {
            eprintln!("expected key=value, got `{item}`");
            return Err(2);
        };
        let key = match k {
            "cache" => "cache_mb",
            other => other,
        };
        let value = match key {
            "code" | "policy" | "scheme" => Json::Str(v.to_string()),
            "p" | "cache_mb" | "chunk_kb" | "stripes" | "errors" | "workers" | "seed"
            | "gen_threads" => match v.parse::<u64>() {
                Ok(n) => Json::Num(n as f64),
                Err(_) => {
                    eprintln!("bad value for `{key}`: `{v}`");
                    return Err(2);
                }
            },
            other => {
                eprintln!("`--{other}` is not supported for daemon repairs");
                return Err(2);
            }
        };
        pairs.push((key.to_string(), value));
    }
    let mut obj = std::collections::BTreeMap::new();
    for (k, v) in pairs {
        obj.insert(k, v);
    }
    Ok(Json::Obj(obj))
}

fn connect_or_report(addr: &ServerAddr) -> Result<DaemonClient, i32> {
    DaemonClient::connect(addr).map_err(|e| {
        eprintln!(
            "cannot connect to fbfd at {}: {e} (is it running? start one with `fbf serve`)",
            addr_display(addr)
        );
        1
    })
}

/// One request/reply exchange; prints the reply and maps `ok` to the
/// exit code.
fn call_and_print(client: &mut DaemonClient, req: &Json, json: bool) -> i32 {
    match client.call(req) {
        Ok(reply) => {
            let ok = reply.get("ok").and_then(Json::as_bool).unwrap_or(false);
            if json {
                print_json(&reply);
            } else if ok {
                println!("{}", reply.render());
            } else {
                let msg = reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error");
                eprintln!("daemon error: {msg}");
            }
            i32::from(!ok)
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            1
        }
    }
}

/// Render a daemon `stat` reply as a compact human-readable snapshot:
/// a one-line summary, a per-job table (live escalation counters from
/// the worker's `Progress`, plus hit ratio once finished), and per-class
/// latency quantiles merged across every finished job.
fn render_stat(reply: &Json) -> String {
    let num = |key: &str| reply.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = format!(
        "fbfd up {:.1}s · workers {} (busy {}) · queue {} · running {} · done {} · failed {}\n",
        num("uptime_s"),
        num("workers"),
        num("workers_busy"),
        num("queue_depth"),
        num("jobs_running"),
        num("jobs_done"),
        num("jobs_failed"),
    );
    let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
    if !jobs.is_empty() {
        out.push_str(&format!(
            "\n{:>4} {:<8} {:<7} {:>18} {:>6} {:>7} {:>6} {:>5} {:>7} {:>10}\n",
            "job",
            "state",
            "backend",
            "trace",
            "rounds",
            "replans",
            "faults",
            "lost",
            "hit",
            "reads"
        ));
        for job in jobs {
            let jn = |key: &str| job.get(key).and_then(Json::as_u64).unwrap_or(0);
            let hit = job
                .get("hit_ratio")
                .and_then(Json::as_f64)
                .map_or_else(|| "-".to_string(), |h| format!("{h:.3}"));
            let reads = job
                .get("disk_reads")
                .and_then(Json::as_u64)
                .map_or_else(|| "-".to_string(), |r| r.to_string());
            out.push_str(&format!(
                "{:>4} {:<8} {:<7} {:>18} {:>6} {:>7} {:>6} {:>5} {:>7} {:>10}\n",
                jn("job"),
                job.get("state").and_then(Json::as_str).unwrap_or("?"),
                job.get("backend").and_then(Json::as_str).unwrap_or("?"),
                jn("trace"),
                jn("rounds"),
                jn("replans"),
                jn("faults"),
                jn("stripes_lost"),
                hit,
                reads,
            ));
        }
    }
    if let Some(Json::Obj(classes)) = reply.get("class_latency") {
        let active: Vec<_> = classes
            .iter()
            .filter(|(_, l)| l.get("count").and_then(Json::as_u64).unwrap_or(0) > 0)
            .collect();
        if !active.is_empty() {
            out.push_str(&format!(
                "\n{:<10} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                "class", "count", "p50_ms", "p90_ms", "p99_ms", "p999_ms"
            ));
            for (name, l) in active {
                let q = |key: &str| l.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                out.push_str(&format!(
                    "{:<10} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                    name,
                    l.get("count").and_then(Json::as_u64).unwrap_or(0),
                    q("p50_ms"),
                    q("p90_ms"),
                    q("p99_ms"),
                    q("p999_ms"),
                ));
            }
        }
    }
    out
}

/// `fbf client top` — a refreshing `stat` view. `--interval-ms` sets the
/// refresh period (default 1000), `--iterations` bounds the run (0 =
/// until interrupted; CI uses a finite count).
fn client_top(args: &[String], addr: &ServerAddr) -> i32 {
    let (args, interval) = match split_flag(args, "interval-ms") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let interval: u64 = match interval.as_deref().map(str::parse).transpose() {
        Ok(ms) => ms.unwrap_or(1000).max(50),
        Err(_) => {
            eprintln!("bad --interval-ms value");
            return 2;
        }
    };
    let (args, iterations) = match split_flag(&args, "iterations") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let iterations: u64 = match iterations.as_deref().map(str::parse).transpose() {
        Ok(n) => n.unwrap_or(0),
        Err(_) => {
            eprintln!("bad --iterations value");
            return 2;
        }
    };
    if !args.is_empty() {
        eprintln!("usage: fbf client top [--interval-ms <n>] [--iterations <n>]");
        return 2;
    }
    let mut client = match connect_or_report(addr) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let mut done = 0u64;
    loop {
        let reply = match client.call(&Json::obj([("cmd", Json::Str("stat".into()))])) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("request failed: {e}");
                return 1;
            }
        };
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!(
                "daemon error: {}",
                reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
            );
            return 1;
        }
        // Clear screen + home, like top(1); harmless when piped.
        print!("\x1b[2J\x1b[H{}", render_stat(&reply));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        done += 1;
        if iterations != 0 && done >= iterations {
            return 0;
        }
        std::thread::sleep(Duration::from_millis(interval));
    }
}

fn cmd_client(args: &[String], json: bool) -> i32 {
    let (args, addr) = match split_addr(args) {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let Some((action, rest)) = args.split_first() else {
        eprintln!(
            "usage: fbf client [--socket <path> | --tcp <addr>] \
             ping|repair|rebuild|status|jobs|read|metrics|stat|top|dump|watch|load|shutdown"
        );
        return 2;
    };
    match action.as_str() {
        "ping" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            call_and_print(
                &mut client,
                &Json::obj([("cmd", Json::Str("ping".into()))]),
                json,
            )
        }
        "repair" => client_repair(rest, &addr, json),
        "rebuild" => client_rebuild(rest, &addr, json),
        "status" => {
            let Some(id) = rest.first().and_then(|s| s.parse::<u64>().ok()) else {
                eprintln!("usage: fbf client status <job>");
                return 2;
            };
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            call_and_print(
                &mut client,
                &Json::obj([
                    ("cmd", Json::Str("status".into())),
                    ("job", Json::Num(id as f64)),
                ]),
                json,
            )
        }
        "jobs" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            call_and_print(
                &mut client,
                &Json::obj([("cmd", Json::Str("jobs".into()))]),
                json,
            )
        }
        "read" => {
            let nums: Vec<u64> = rest.iter().filter_map(|s| s.parse().ok()).collect();
            if nums.len() != 4 {
                eprintln!("usage: fbf client read <job> <stripe> <row> <col>");
                return 2;
            }
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            call_and_print(
                &mut client,
                &Json::obj([
                    ("cmd", Json::Str("read".into())),
                    ("job", Json::Num(nums[0] as f64)),
                    ("stripe", Json::Num(nums[1] as f64)),
                    ("row", Json::Num(nums[2] as f64)),
                    ("col", Json::Num(nums[3] as f64)),
                ]),
                json,
            )
        }
        "metrics" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            match client.call(&Json::obj([("cmd", Json::Str("metrics".into()))])) {
                Ok(reply) if json => {
                    print_json(&reply);
                    0
                }
                Ok(reply) => {
                    // The Prometheus text is the payload; print it bare so
                    // it pipes straight into check_trace.py --prom.
                    match reply.get("prometheus").and_then(Json::as_str) {
                        Some(text) => {
                            print!("{text}");
                            0
                        }
                        None => {
                            eprintln!("daemon error: {}", reply.render());
                            1
                        }
                    }
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    1
                }
            }
        }
        "stat" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            match client.call(&Json::obj([("cmd", Json::Str("stat".into()))])) {
                Ok(reply) if json => {
                    print_json(&reply);
                    i32::from(reply.get("ok").and_then(Json::as_bool) != Some(true))
                }
                Ok(reply) => {
                    print!("{}", render_stat(&reply));
                    i32::from(reply.get("ok").and_then(Json::as_bool) != Some(true))
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    1
                }
            }
        }
        "top" => client_top(rest, &addr),
        "dump" => {
            let (rest, out) = match split_flag(rest, "out") {
                Ok(v) => v,
                Err(rc) => return rc,
            };
            if !rest.is_empty() {
                eprintln!("usage: fbf client dump [--out <file.jsonl>]");
                return 2;
            }
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            match client.call(&Json::obj([("cmd", Json::Str("dump".into()))])) {
                Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true) => {
                    let jsonl = reply.get("jsonl").and_then(Json::as_str).unwrap_or("");
                    match out {
                        Some(path) => {
                            if let Err(e) = std::fs::write(&path, jsonl) {
                                eprintln!("cannot write {path}: {e}");
                                return 1;
                            }
                            eprintln!(
                                "wrote {} flight-recorder events to {path}",
                                reply.get("events").and_then(Json::as_u64).unwrap_or(0)
                            );
                            0
                        }
                        None if json => {
                            print_json(&reply);
                            0
                        }
                        None => {
                            print!("{jsonl}");
                            0
                        }
                    }
                }
                Ok(reply) => {
                    eprintln!(
                        "daemon error: {}",
                        reply
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown error")
                    );
                    1
                }
                Err(e) => {
                    eprintln!("request failed: {e}");
                    1
                }
            }
        }
        "watch" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            match client.call(&Json::obj([("cmd", Json::Str("subscribe".into()))])) {
                Ok(_ack) => loop {
                    match client.recv() {
                        Ok(Some(frame)) => match frame.get("event").and_then(Json::as_str) {
                            Some(line) => println!("{line}"),
                            None => println!("{}", frame.render()),
                        },
                        Ok(None) => return 0,
                        Err(e) => {
                            eprintln!("stream ended: {e}");
                            return 1;
                        }
                    }
                },
                Err(e) => {
                    eprintln!("subscribe failed: {e}");
                    1
                }
            }
        }
        "load" => client_load(rest, &addr, json),
        "shutdown" => {
            let mut client = match connect_or_report(&addr) {
                Ok(c) => c,
                Err(rc) => return rc,
            };
            call_and_print(
                &mut client,
                &Json::obj([("cmd", Json::Str("shutdown".into()))]),
                json,
            )
        }
        other => {
            eprintln!("unknown client action `{other}`");
            2
        }
    }
}

fn client_repair(args: &[String], addr: &ServerAddr, json: bool) -> i32 {
    let (args, backend) = match split_flag(args, "backend") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let (args, dir) = match split_flag(&args, "dir") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let (args, trace_in) = match split_flag(&args, "trace-in") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let (args, wait) = split_switch(&args, "wait");
    let overrides = match overrides_from_args(&args) {
        Ok(o) => o,
        Err(rc) => return rc,
    };
    let mut fields = vec![("cmd", Json::Str("repair".into())), ("config", overrides)];
    if let Some(b) = backend {
        fields.push(("backend", Json::Str(b)));
    }
    if let Some(d) = dir {
        fields.push(("dir", Json::Str(d)));
    }
    if let Some(path) = &trace_in {
        match std::fs::read_to_string(path) {
            Ok(text) => fields.push(("trace", Json::Str(text))),
            Err(e) => {
                eprintln!("cannot read trace {path}: {e}");
                return 1;
            }
        }
    }
    let mut client = match connect_or_report(addr) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let reply = match client.call(&Json::obj(fields)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return 1;
        }
    };
    let ok = reply.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let job = reply.get("job").and_then(Json::as_u64);
    if !ok || job.is_none() {
        if json {
            print_json(&reply);
        } else {
            eprintln!(
                "daemon error: {}",
                reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
            );
        }
        return 1;
    }
    let job = job.expect("checked above");
    if !wait {
        if json {
            print_json(&reply);
        } else {
            println!("job {job} queued");
        }
        return 0;
    }
    match wait_for_job(&mut client, job) {
        Ok(status) => {
            let done = status.get("state").and_then(Json::as_str) == Some("done");
            if json {
                print_json(&status);
            } else if done {
                println!("job {job} done");
                if let Some(m) = status.get("metrics") {
                    println!("{}", m.render());
                }
            } else {
                eprintln!(
                    "job {job} failed: {}",
                    status
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                );
            }
            i32::from(!done)
        }
        Err(e) => {
            eprintln!("waiting on job {job} failed: {e}");
            1
        }
    }
}

/// Submit an array-wide rebuild job (`fbf client rebuild`): the same
/// spec flags as `fbf rebuild`, executed on the daemon's worker pool.
fn client_rebuild(args: &[String], addr: &ServerAddr, json: bool) -> i32 {
    let mut rest = args.to_vec();
    let mut values = Vec::with_capacity(8);
    // Wire keys, in the order the flags are pulled out below.
    let spec_flags = [
        ("disks", "disks"),
        ("placement", "placement"),
        ("placement-seed", "placement_seed"),
        ("failed-disk", "failed_disk"),
        ("cap", "cap"),
        ("fairness", "fairness"),
        ("campaigns", "campaigns"),
        ("app-reads", "app_reads"),
    ];
    for (flag, _) in spec_flags {
        match split_flag(&rest, flag) {
            Ok((r, v)) => {
                rest = r;
                values.push(v);
            }
            Err(rc) => return rc,
        }
    }
    let (rest, wait) = split_switch(&rest, "wait");
    let overrides = match overrides_from_args(&rest) {
        Ok(o) => o,
        Err(rc) => return rc,
    };
    let mut fields = vec![("cmd", Json::Str("rebuild".into())), ("config", overrides)];
    for ((_, wire_key), value) in spec_flags.into_iter().zip(values) {
        let Some(v) = value else { continue };
        // The daemon validates; the client only distinguishes numbers
        // (disks, seeds, caps) from names (placement, fairness).
        match v.parse::<f64>() {
            Ok(n) => fields.push((wire_key, Json::Num(n))),
            Err(_) => fields.push((wire_key, Json::Str(v))),
        }
    }
    let mut client = match connect_or_report(addr) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let reply = match client.call(&Json::obj(fields)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return 1;
        }
    };
    let ok = reply.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let job = reply.get("job").and_then(Json::as_u64);
    if !ok || job.is_none() {
        if json {
            print_json(&reply);
        } else {
            eprintln!(
                "daemon error: {}",
                reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
            );
        }
        return 1;
    }
    let job = job.expect("checked above");
    if !wait {
        if json {
            print_json(&reply);
        } else {
            println!("job {job} queued");
        }
        return 0;
    }
    match wait_for_job(&mut client, job) {
        Ok(status) => {
            let done = status.get("state").and_then(Json::as_str) == Some("done");
            if json {
                print_json(&status);
            } else if done {
                println!("job {job} done");
                if let Some(outcome) = status.get("rebuild") {
                    println!("{}", outcome.render());
                }
            } else {
                eprintln!(
                    "job {job} failed: {}",
                    status
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                );
            }
            i32::from(!done)
        }
        Err(e) => {
            eprintln!("waiting on job {job} failed: {e}");
            1
        }
    }
}

/// Poll `status` until the job leaves queued/running.
fn wait_for_job(client: &mut DaemonClient, job: u64) -> Result<Json, String> {
    loop {
        let status = client
            .call(&Json::obj([
                ("cmd", Json::Str("status".into())),
                ("job", Json::Num(job as f64)),
            ]))
            .map_err(|e| e.to_string())?;
        match status.get("state").and_then(Json::as_str) {
            Some("done") | Some("failed") => return Ok(status),
            Some(_) => std::thread::sleep(Duration::from_millis(50)),
            None => {
                return Err(format!("unexpected status reply: {}", status.render()));
            }
        }
    }
}

/// Trace-driven load generator: shard a synthetic campaign across N
/// connections, submit each shard as an inline-trace repair, and report
/// per-class round-trip latency digests.
fn client_load(args: &[String], addr: &ServerAddr, json: bool) -> i32 {
    let (args, connections) = match split_flag(args, "connections") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let connections: usize = match connections.as_deref().map(str::parse).transpose() {
        Ok(n) => n.unwrap_or(4).max(1),
        Err(_) => {
            eprintln!("bad --connections value");
            return 2;
        }
    };
    let (args, backend) = match split_flag(&args, "backend") {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    // The load campaign is generated locally so every connection replays
    // a disjoint shard; the same config overrides ship with each repair
    // so the daemon executes the shard against the intended geometry.
    let kv = match normalize_config_args(&args) {
        Ok(kv) => kv,
        Err(rc) => return rc,
    };
    let cfg = match parse_kv(&kv).and_then(build_or_report) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let overrides = match overrides_from_args(&args) {
        Ok(o) => o,
        Err(rc) => return rc,
    };
    let code = match StripeCode::build(cfg.code, cfg.p) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot build {}: {e}", cfg.code.name());
            return 2;
        }
    };
    let group = generate_errors(
        &code,
        &ErrorGenConfig::paper_default(cfg.stripes, cfg.error_count, cfg.seed),
    );
    let shards = shard_campaign(&group, connections);
    // Stamp every connection's repair with a client-minted trace id so
    // the daemon's spans are attributable per connection afterwards.
    let trace_ids = client_trace_ids(u64::from(std::process::id()), shards.len());
    let started = Instant::now();
    let workers: Vec<_> = shards
        .into_iter()
        .zip(trace_ids)
        .map(|(shard, trace_id)| {
            let addr = addr.clone();
            let overrides = overrides.clone();
            let backend = backend.clone();
            std::thread::spawn(move || -> LoadReport {
                let mut report = LoadReport::new();
                let mut client = match DaemonClient::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => {
                        report.record_failure("connect");
                        return report;
                    }
                };
                let mut fields = vec![
                    ("cmd", Json::Str("repair".into())),
                    ("config", overrides),
                    ("trace", Json::Str(render_trace(&shard))),
                    ("trace_id", Json::Num(trace_id as f64)),
                ];
                if let Some(b) = backend {
                    fields.push(("backend", Json::Str(b)));
                }
                let submit = Instant::now();
                let job = match client.call(&Json::obj(fields)) {
                    Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true) => {
                        match reply.get("job").and_then(Json::as_u64) {
                            Some(id) => id,
                            None => {
                                report.record_failure("repair");
                                return report;
                            }
                        }
                    }
                    _ => {
                        report.record_failure("repair");
                        return report;
                    }
                };
                loop {
                    let poll = Instant::now();
                    let status = client.call(&Json::obj([
                        ("cmd", Json::Str("status".into())),
                        ("job", Json::Num(job as f64)),
                    ]));
                    let Ok(status) = status else {
                        report.record_failure("status");
                        return report;
                    };
                    report.record("status", poll.elapsed().as_nanos() as u64);
                    match status.get("state").and_then(Json::as_str) {
                        Some("done") => {
                            report.record("repair", submit.elapsed().as_nanos() as u64);
                            return report;
                        }
                        Some("failed") => {
                            report.record_failure("repair");
                            return report;
                        }
                        Some(_) => std::thread::sleep(Duration::from_millis(20)),
                        None => {
                            report.record_failure("status");
                            return report;
                        }
                    }
                }
            })
        })
        .collect();
    let mut merged = LoadReport::new();
    for handle in workers {
        match handle.join() {
            Ok(report) => merged.merge(&report),
            Err(_) => merged.record_failure("connect"),
        }
    }
    let wall = started.elapsed();
    if json {
        let class = |name: &str| {
            let d = merged.digest(name);
            Json::obj([
                ("count", Json::Num(merged.count(name) as f64)),
                ("failures", Json::Num(merged.failure_count(name) as f64)),
                (
                    "p50_ms",
                    Json::Num(d.and_then(|d| d.quantile_ns(0.5)).unwrap_or(0) as f64 / 1e6),
                ),
                (
                    "p99_ms",
                    Json::Num(d.and_then(|d| d.quantile_ns(0.99)).unwrap_or(0) as f64 / 1e6),
                ),
            ])
        };
        print_json(&Json::obj([
            ("connections", Json::Num(connections as f64)),
            ("errors", Json::Num(group.len() as f64)),
            ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
            ("repair", class("repair")),
            ("status", class("status")),
            ("failures", Json::Num(merged.total_failures() as f64)),
        ]));
    } else {
        println!(
            "load: {} errors over {} connections in {:.1} ms",
            group.len(),
            connections,
            wall.as_secs_f64() * 1e3
        );
        print!("{}", merged.render());
    }
    i32::from(merged.total_failures() > 0 || merged.count("repair") == 0)
}

fn cmd_scrub(args: &[String], json: bool) -> i32 {
    use fbf::codes::encode::encode;
    use fbf::recovery::{scrub, ScrubOutcome};
    use fbf::{Cell, Stripe};

    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let mut stripe = Stripe::patterned(code.layout(), 4096);
    encode(&code, &mut stripe).expect("encode");
    let victim = Cell::new(code.rows() / 2, code.cols() / 3);
    let mut buf = stripe.get(code.layout(), victim).to_vec();
    buf[0] ^= 0xFF;
    stripe.set(code.layout(), victim, buf.into());
    if !json {
        println!("{}: silently corrupted {victim}", code.describe());
    }
    let outcome = scrub(&code, &mut stripe, 2);
    let repaired = matches!(outcome, ScrubOutcome::Repaired(_));
    if json {
        print_json(&Json::obj([
            ("code", Json::Str(code.spec().name().to_string())),
            ("corrupted", Json::Str(victim.to_string())),
            ("outcome", Json::Str(format!("{outcome:?}"))),
            ("repaired", Json::Bool(repaired)),
        ]));
        return i32::from(!repaired);
    }
    match outcome {
        ScrubOutcome::Repaired(cells) => {
            println!("scrubber located {cells:?} and repaired it");
            0
        }
        other => {
            println!("scrub outcome: {other:?}");
            1
        }
    }
}

fn cmd_mttdl(args: &[String], json: bool) -> i32 {
    let (Some(disks), Some(mttr)) = (
        args.first().and_then(|s| s.parse::<usize>().ok()),
        args.get(1).and_then(|s| s.parse::<f64>().ok()),
    ) else {
        eprintln!("usage: fbf mttdl <disks> <mttr_hours>");
        return 2;
    };
    let mut rows = Vec::new();
    for ft in 1..=3 {
        let p = ReliabilityParams {
            disks,
            fault_tolerance: ft,
            mttr_hours: mttr,
            ..ReliabilityParams::nearline_3dft(disks)
        };
        rows.push((ft, fbf::mttdl_years(&p)));
    }
    if json {
        print_json(&Json::obj([
            ("disks", Json::Num(disks as f64)),
            ("mttr_hours", Json::Num(mttr)),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|&(ft, years)| {
                            Json::obj([
                                ("fault_tolerance", Json::Num(ft as f64)),
                                ("mttdl_years", Json::Num(years)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        return 0;
    }
    let mut table = Table::new(
        format!("MTTDL, {disks} nearline disks, {mttr} h repair window"),
        &["fault_tolerance", "mttdl_years"],
    );
    for (ft, years) in rows {
        table.push_row(vec![ft.to_string(), format!("{years:.3e}")]);
    }
    println!("{}", table.render());
    0
}
