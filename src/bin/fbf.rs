//! `fbf` — command-line front end for the FBF reproduction.
//!
//! ```text
//! fbf layout <code> <p>                     print a stripe layout and chain summary
//! fbf plan <code> <p> <col> <row> <len>     show recovery schemes for one error
//! fbf trace <stripes> <count> [seed]        emit a synthetic error trace (stdout)
//! fbf run [key=value ...]                   one experiment, all metrics
//! fbf sweep [key=value ...]                 cache-size sweep across the five policies
//! fbf scrub <code> <p>                      silent-corruption scrub demo
//! fbf mttdl <disks> <mttr_hours>            reliability model for a 3DFT array
//! ```
//!
//! `run`/`sweep` accept `code=tip|hdd1|triplestar|star|rdp|evenodd`,
//! `p=7`, `policy=fifo|lru|lfu|arc|fbf|...`, `cache=64` (MiB),
//! `stripes=4096`, `errors=512`, `workers=128`, `seed=N`,
//! `scheme=typical|fbf|greedy`, plus fault injection:
//! `media=‰`, `transient=‰`, `fault_seed=N`, `kill=<disk>@<ms>`,
//! `slow=<disk>@<permille>`.
//!
//! `run` additionally accepts `--trace-in <file>` to replay an error
//! trace (as emitted by `fbf trace`) instead of drawing a synthetic
//! campaign.
//!
//! Global observability flags (any command, extracted before parsing):
//! `--trace <path>` streams a chrome://tracing-compatible JSONL run trace
//! to `<path>`; `--obs` pretty-prints events to stderr. Either one turns
//! on instrumented experiments for `run`/`sweep`. `--metrics <path>`
//! writes a Prometheus text-exposition snapshot of `run`/`sweep` results
//! (validated by `scripts/check_trace.py --prom`).

use fbf::cache::PolicyKind;
use fbf::codes::{CodeSpec, StripeCode};
use fbf::core::report::f;
use fbf::core::{
    run_experiment, run_experiment_with_errors, sweep, ExperimentConfig, ExperimentConfigBuilder,
    ReliabilityParams, Table,
};
use fbf::disksim::{DiskKill, FaultPlan, SimTime, SlowDisk};
use fbf::recovery::{scheme::generate, PartialStripeError, PriorityDictionary, SchemeKind};
use fbf::workload::{generate_errors, parse_trace, render_trace, validate_against, ErrorGenConfig};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, obs, metrics_out) = match install_obs_flags(&raw) {
        Ok(v) => v,
        Err(rc) => std::process::exit(rc),
    };
    let metrics_out = metrics_out.as_deref();
    let code = match args.first().map(String::as_str) {
        Some("layout") => cmd_layout(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("run") => cmd_run(&args[1..], obs, metrics_out),
        Some("sweep") => cmd_sweep(&args[1..], obs, metrics_out),
        Some("scrub") => cmd_scrub(&args[1..]),
        Some("mttdl") => cmd_mttdl(&args[1..]),
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            print_usage();
            2
        }
    };
    // `exit` skips destructors, so flush the trace subscriber explicitly.
    if obs {
        fbf::obs::uninstall();
    }
    std::process::exit(code);
}

/// Pull `--trace <path>` / `--trace=<path>` / `--obs` / `--metrics <path>`
/// out of the argument list (they may appear anywhere) and install the
/// matching subscriber. Returns the remaining arguments, whether event
/// observability is on, and the Prometheus snapshot path if requested.
fn install_obs_flags(raw: &[String]) -> Result<(Vec<String>, bool, Option<String>), i32> {
    let mut args = Vec::with_capacity(raw.len());
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut stderr = false;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--obs" => stderr = true,
            "--trace" => {
                let Some(p) = raw.get(i + 1) else {
                    eprintln!("--trace needs a file path");
                    return Err(2);
                };
                trace = Some(p.clone());
                i += 1;
            }
            "--metrics" => {
                let Some(p) = raw.get(i + 1) else {
                    eprintln!("--metrics needs a file path");
                    return Err(2);
                };
                metrics = Some(p.clone());
                i += 1;
            }
            s => {
                if let Some(p) = s.strip_prefix("--trace=") {
                    trace = Some(p.to_string());
                } else if let Some(p) = s.strip_prefix("--metrics=") {
                    metrics = Some(p.to_string());
                } else {
                    args.push(raw[i].clone());
                }
            }
        }
        i += 1;
    }

    let mut sinks: Vec<std::sync::Arc<dyn fbf::obs::Subscriber>> = Vec::new();
    if let Some(path) = trace {
        match fbf::obs::TraceWriter::create(std::path::Path::new(&path)) {
            Ok(w) => {
                eprintln!("(trace streaming to {path})");
                sinks.push(std::sync::Arc::new(w));
            }
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                return Err(1);
            }
        }
    }
    if stderr {
        sinks.push(std::sync::Arc::new(fbf::obs::StderrSubscriber::default()));
    }
    if sinks.is_empty() {
        return Ok((args, false, metrics));
    }
    let sub: std::sync::Arc<dyn fbf::obs::Subscriber> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        std::sync::Arc::new(fbf::obs::FanoutSubscriber::new(sinks))
    };
    fbf::obs::install(sub);
    Ok((args, true, metrics))
}

/// Write a Prometheus snapshot of `points` to `path` (best-effort: an I/O
/// failure is reported but does not change the command's exit code — the
/// experiment itself succeeded).
fn write_metrics_snapshot(path: &str, points: &[fbf::core::SweepPoint]) {
    match std::fs::write(path, fbf::core::prometheus_snapshot(points)) {
        Ok(()) => eprintln!("(metrics snapshot written to {path})"),
        Err(e) => eprintln!("cannot write metrics snapshot {path}: {e}"),
    }
}

fn print_usage() {
    eprintln!(
        "fbf — Favorable Block First reproduction CLI\n\n\
         usage:\n\
         \u{20}  fbf layout <code> <p>\n\
         \u{20}  fbf plan <code> <p> <col> <first_row> <len> [scheme]\n\
         \u{20}  fbf trace <stripes> <count> [seed]\n\
         \u{20}  fbf run [key=value ...] [--trace-in <file>]\n\
         \u{20}  fbf sweep [key=value ...]\n\
         \u{20}  fbf scrub <code> <p>\n\
         \u{20}  fbf mttdl <disks> <mttr_hours>\n\n\
         global flags: --trace <path> (JSONL run trace, chrome://tracing\n\
         \u{20}  compatible), --obs (event log on stderr), --metrics <path>\n\
         \u{20}  (Prometheus snapshot of run/sweep results)\n\n\
         codes: tip hdd1 triplestar star rdp evenodd\n\
         policies: fifo lru lfu arc fbf lru-k 2q lrfu fbr vdf\n\
         faults (run/sweep): media=N transient=N (per-mille), fault_seed=N,\n\
         \u{20}  kill=<disk>@<ms>, slow=<disk>@<permille>"
    );
}

fn parse_code(s: &str) -> Option<CodeSpec> {
    match s.to_ascii_lowercase().as_str() {
        "tip" => Some(CodeSpec::Tip),
        "hdd1" => Some(CodeSpec::Hdd1),
        "triplestar" | "triple-star" | "ts" => Some(CodeSpec::TripleStar),
        "star" => Some(CodeSpec::Star),
        "rdp" => Some(CodeSpec::Rdp),
        "evenodd" | "eo" => Some(CodeSpec::Evenodd),
        _ => None,
    }
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    match s.to_ascii_lowercase().as_str() {
        "fifo" => Some(PolicyKind::Fifo),
        "lru" => Some(PolicyKind::Lru),
        "lfu" => Some(PolicyKind::Lfu),
        "arc" => Some(PolicyKind::Arc),
        "fbf" => Some(PolicyKind::Fbf),
        "lru-k" | "lruk" | "lru2" => Some(PolicyKind::LruK),
        "2q" | "twoq" => Some(PolicyKind::TwoQ),
        "lrfu" => Some(PolicyKind::Lrfu),
        "fbr" => Some(PolicyKind::Fbr),
        "vdf" => Some(PolicyKind::Vdf),
        _ => None,
    }
}

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    match s.to_ascii_lowercase().as_str() {
        "typical" | "horizontal" => Some(SchemeKind::Typical),
        "fbf" | "cycling" => Some(SchemeKind::FbfCycling),
        "greedy" => Some(SchemeKind::Greedy),
        _ => None,
    }
}

/// Build a code from two positional args, reporting errors to stderr.
fn build_code(args: &[String]) -> Result<StripeCode, i32> {
    let spec = args.first().and_then(|s| parse_code(s)).ok_or_else(|| {
        eprintln!("expected a code name (tip/hdd1/triplestar/star/rdp/evenodd)");
        2
    })?;
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
        eprintln!("expected a prime p");
        2
    })?;
    StripeCode::build(spec, p).map_err(|e| {
        eprintln!("cannot build {spec}: {e}");
        1
    })
}

fn cmd_layout(args: &[String]) -> i32 {
    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    println!(
        "{}  ({} rows x {} disks, tolerates {} failures)",
        code.describe(),
        code.rows(),
        code.cols(),
        code.spec().fault_tolerance()
    );
    println!("{}", code.layout().ascii_art());
    let mut per_dir = [0usize; 3];
    for chain in code.chains() {
        per_dir[chain.direction.index()] += 1;
    }
    println!(
        "chains: {} horizontal, {} diagonal, {} anti-diagonal",
        per_dir[0], per_dir[1], per_dir[2]
    );
    let avg_len: f64 =
        code.chains().iter().map(|c| c.len() as f64).sum::<f64>() / code.chains().len() as f64;
    println!("average chain length: {avg_len:.2} members");
    0
}

fn cmd_plan(args: &[String]) -> i32 {
    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let (Some(col), Some(first), Some(len)) = (
        args.get(2).and_then(|s| s.parse::<usize>().ok()),
        args.get(3).and_then(|s| s.parse::<usize>().ok()),
        args.get(4).and_then(|s| s.parse::<usize>().ok()),
    ) else {
        eprintln!("usage: fbf plan <code> <p> <col> <first_row> <len> [scheme]");
        return 2;
    };
    let kind = args
        .get(5)
        .and_then(|s| parse_scheme(s))
        .unwrap_or(SchemeKind::FbfCycling);

    let error = match PartialStripeError::new(&code, 0, col, first, len) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("invalid error: {e}");
            return 1;
        }
    };
    let scheme = match generate(&code, &error, kind) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scheme generation failed: {e}");
            return 1;
        }
    };
    println!("{} / {} scheme for {error}:", code.describe(), kind.name());
    for r in &scheme.repairs {
        let reads: Vec<String> = r.option.reads.iter().map(|c| c.to_string()).collect();
        println!(
            "  {} via {:>13}: {}",
            r.target,
            r.option.direction.to_string(),
            reads.join(" ")
        );
    }
    println!(
        "totals: {} slots / {} distinct / {} saved",
        scheme.total_read_slots(),
        scheme.unique_reads(),
        scheme.shared_savings()
    );
    let dict = PriorityDictionary::from_scheme(&scheme);
    for prio in (1..=3).rev() {
        let cells = dict.cells_with_priority(0, prio);
        if !cells.is_empty() {
            let names: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
            println!("priority {prio}: {}", names.join(", "));
        }
    }
    0
}

fn cmd_trace(args: &[String]) -> i32 {
    let (Some(stripes), Some(count)) = (
        args.first().and_then(|s| s.parse::<u32>().ok()),
        args.get(1).and_then(|s| s.parse::<usize>().ok()),
    ) else {
        eprintln!("usage: fbf trace <stripes> <count> [seed]");
        return 2;
    };
    let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0x5EED);
    // Trace geometry bound: use TIP(p=13) so traces replay on any shipped
    // code with p >= 13 — or adjust to taste.
    let code = StripeCode::build(CodeSpec::Tip, 13).expect("13 is prime");
    let group = generate_errors(&code, &ErrorGenConfig::paper_default(stripes, count, seed));
    print!("{}", render_trace(&group));
    0
}

/// Parse `key=value` arguments into an [`ExperimentConfigBuilder`]
/// (starting from the paper's defaults). Validation happens in
/// [`build_or_report`], so a bad combination fails with a typed message
/// before any work starts.
fn parse_kv(args: &[String]) -> Result<ExperimentConfigBuilder, i32> {
    let mut builder = ExperimentConfig::builder();
    let mut faults = FaultPlan::none();
    for arg in args {
        let Some((k, v)) = arg.split_once('=') else {
            eprintln!("expected key=value, got `{arg}`");
            return Err(2);
        };
        let next = match k {
            "code" => parse_code(v).map(|c| builder.code(c)),
            "p" => v.parse().ok().map(|p| builder.p(p)),
            "policy" => parse_policy(v).map(|p| builder.policy(p)),
            "scheme" => parse_scheme(v).map(|s| builder.scheme(s)),
            "cache" | "cache_mb" => v.parse().ok().map(|c| builder.cache_mb(c)),
            "stripes" => v.parse().ok().map(|s| builder.stripes(s)),
            "errors" => v.parse().ok().map(|e| builder.error_count(e)),
            "workers" => v.parse().ok().map(|w| builder.workers(w)),
            "seed" => v.parse().ok().map(|s| builder.seed(s)),
            // Fault injection (all optional; any one activates the plan).
            "media" => v.parse().ok().map(|m| {
                faults.media_per_mille = m;
                builder
            }),
            "transient" => v.parse().ok().map(|t| {
                faults.transient_per_mille = t;
                builder
            }),
            "fault_seed" | "fault-seed" => v.parse().ok().map(|s| {
                faults.seed = s;
                builder
            }),
            // kill=<disk>@<ms>: the disk dies at that (virtual) instant.
            "kill" => parse_at(v).map(|(disk, ms)| {
                faults.disk_kill = Some(DiskKill {
                    disk,
                    at: SimTime::from_millis(ms),
                });
                builder
            }),
            // slow=<disk>@<permille>: service time scaled by ‰ (2000 = 2x).
            "slow" => parse_at(v).and_then(|(disk, scale)| {
                u32::try_from(scale).ok().map(|scale_milli| {
                    faults.straggler = Some(SlowDisk { disk, scale_milli });
                    builder
                })
            }),
            _ => {
                eprintln!("unknown key `{k}`");
                return Err(2);
            }
        };
        let Some(b) = next else {
            eprintln!("bad value for `{k}`: `{v}`");
            return Err(2);
        };
        builder = b;
    }
    if faults.is_active() {
        builder = builder.faults(faults);
    }
    Ok(builder)
}

/// Parse `<disk>@<n>` (e.g. `kill=3@40`, `slow=2@1500`).
fn parse_at(v: &str) -> Option<(u32, u64)> {
    let (disk, n) = v.split_once('@')?;
    Some((disk.parse().ok()?, n.parse().ok()?))
}

/// Pull `--trace-in <file>` / `--trace-in=<file>` out of a command's
/// arguments, leaving the `key=value` pairs.
fn split_trace_in(args: &[String]) -> Result<(Vec<String>, Option<String>), i32> {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-in" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--trace-in needs a file path");
                    return Err(2);
                };
                path = Some(p.clone());
                i += 1;
            }
            s => {
                if let Some(p) = s.strip_prefix("--trace-in=") {
                    path = Some(p.to_string());
                } else {
                    rest.push(args[i].clone());
                }
            }
        }
        i += 1;
    }
    Ok((rest, path))
}

/// Finish a builder, turning a [`ConfigError`] into exit code 2.
fn build_or_report(builder: ExperimentConfigBuilder) -> Result<ExperimentConfig, i32> {
    builder.build().map_err(|e| {
        eprintln!("invalid configuration: {e}");
        2
    })
}

fn cmd_run(args: &[String], obs: bool, metrics_out: Option<&str>) -> i32 {
    let (args, trace_in) = match split_trace_in(args) {
        Ok(v) => v,
        Err(rc) => return rc,
    };
    let cfg = match parse_kv(&args)
        .map(|b| b.obs(obs))
        .and_then(build_or_report)
    {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    println!("running {}", cfg.describe());
    let result = match &trace_in {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read trace {path}: {e}");
                    return 1;
                }
            };
            let errors = match parse_trace(&text) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("bad trace {path}: {e}");
                    return 2;
                }
            };
            let code = match StripeCode::build(cfg.code, cfg.p) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot build {}: {e}", cfg.code.name());
                    return 2;
                }
            };
            if let Err(e) = validate_against(&errors, &code, cfg.stripes as usize) {
                eprintln!("trace {path} does not fit the configured geometry: {e}");
                return 2;
            }
            println!("  (replaying {} errors from {path})", errors.len());
            run_experiment_with_errors(&cfg, errors)
        }
        None => run_experiment(&cfg),
    };
    match result {
        Ok(m) => {
            println!("  hit ratio          : {:.4}", m.hit_ratio);
            println!("  disk reads         : {}", m.disk_reads);
            println!("  avg response       : {:.3} ms", m.avg_response_ms);
            println!("  reconstruction time: {:.3} s", m.reconstruction_s);
            println!(
                "  FBF overhead       : {:.4} ms/stripe ({:.3}%)",
                m.overhead_per_stripe_ms, m.overhead_pct
            );
            println!("  chunks recovered   : {}", m.chunks_recovered);
            if m.slo.evaluated {
                println!(
                    "  slo                : {}",
                    if m.slo.pass { "PASS" } else { "FAIL" }
                );
            }
            if let Some(path) = metrics_out {
                write_metrics_snapshot(
                    path,
                    &[fbf::core::SweepPoint {
                        config: cfg,
                        metrics: m.clone(),
                    }],
                );
            }
            if !m.faults.is_empty() || m.stripes_lost > 0 {
                println!(
                    "  faults             : {} media, {} transient ({} retries, {} exhausted), {} dead-disk",
                    m.faults.media_errors,
                    m.faults.transient_faults,
                    m.faults.retries,
                    m.faults.retries_exhausted,
                    m.faults.dead_disk_reads
                );
                println!(
                    "  escalation         : {} replans over {} rounds, {} stripes lost",
                    m.replans, m.replan_rounds, m.stripes_lost
                );
                for dl in &m.data_loss {
                    println!(
                        "    DATA LOSS stripe {}: damage spans {} columns",
                        dl.stripe, dl.columns
                    );
                }
            }
            0
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            1
        }
    }
}

fn cmd_sweep(args: &[String], obs: bool, metrics_out: Option<&str>) -> i32 {
    let builder = match parse_kv(args).map(|b| b.obs(obs)) {
        Ok(b) => b,
        Err(rc) => return rc,
    };
    let base = match build_or_report(builder) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let sizes = [2usize, 8, 32, 64, 128, 256, 512, 2048];
    let configs: Vec<ExperimentConfig> = sizes
        .iter()
        .flat_map(|&mb| {
            PolicyKind::ALL.iter().map(move |&policy| {
                builder
                    .policy(policy)
                    .cache_mb(mb)
                    .build()
                    .expect("validated base stays valid across the grid")
            })
        })
        .collect();
    let points = match sweep(&configs, 0) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return 1;
        }
    };
    if let Some(path) = metrics_out {
        write_metrics_snapshot(path, &points);
    }
    let mut table = Table::new(
        format!("hit ratio — {}(p={})", base.code.name(), base.p),
        &["cache_mb", "FIFO", "LRU", "LFU", "ARC", "FBF"],
    );
    for (i, &mb) in sizes.iter().enumerate() {
        let row = &points[i * 5..(i + 1) * 5];
        table.push_row(
            std::iter::once(mb.to_string())
                .chain(row.iter().map(|pt| f(pt.metrics.hit_ratio, 4)))
                .collect(),
        );
    }
    println!("{}", table.render());
    0
}

fn cmd_scrub(args: &[String]) -> i32 {
    use fbf::codes::encode::encode;
    use fbf::codes::{Cell, Stripe};
    use fbf::recovery::{scrub, ScrubOutcome};

    let code = match build_code(args) {
        Ok(c) => c,
        Err(rc) => return rc,
    };
    let mut stripe = Stripe::patterned(code.layout(), 4096);
    encode(&code, &mut stripe).expect("encode");
    let victim = Cell::new(code.rows() / 2, code.cols() / 3);
    let mut buf = stripe.get(code.layout(), victim).to_vec();
    buf[0] ^= 0xFF;
    stripe.set(code.layout(), victim, buf.into());
    println!("{}: silently corrupted {victim}", code.describe());
    match scrub(&code, &mut stripe, 2) {
        ScrubOutcome::Repaired(cells) => {
            println!("scrubber located {cells:?} and repaired it");
            0
        }
        other => {
            println!("scrub outcome: {other:?}");
            1
        }
    }
}

fn cmd_mttdl(args: &[String]) -> i32 {
    let (Some(disks), Some(mttr)) = (
        args.first().and_then(|s| s.parse::<usize>().ok()),
        args.get(1).and_then(|s| s.parse::<f64>().ok()),
    ) else {
        eprintln!("usage: fbf mttdl <disks> <mttr_hours>");
        return 2;
    };
    let mut table = Table::new(
        format!("MTTDL, {disks} nearline disks, {mttr} h repair window"),
        &["fault_tolerance", "mttdl_years"],
    );
    for ft in 1..=3 {
        let p = ReliabilityParams {
            disks,
            fault_tolerance: ft,
            mttr_hours: mttr,
            ..ReliabilityParams::nearline_3dft(disks)
        };
        table.push_row(vec![
            ft.to_string(),
            format!("{:.3e}", fbf::core::mttdl_years(&p)),
        ]);
    }
    println!("{}", table.render());
    0
}
