#!/usr/bin/env bash
# Regenerate every paper artefact and extension study into results/.
# Scale with FBF_STRIPES / FBF_ERRORS / FBF_WORKERS (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig2_fig3_walkthrough
  fig8_hit_ratio fig9_read_ops fig10_response_time fig11_reconstruction_time
  table4_overhead table5_summary
  ablation_scheme ablation_demotion ablation_sharing ablation_scheduling
  extended_policies tail_latency wov_curve straggler multi_disk_damage
  disk_rebuild degraded_reads raid6_generality reliability_gain
  code_comparison fault_tolerance_audit
)

cargo build --release -p fbf-bench
for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run --release -q -p fbf-bench --bin "$bin"
done
echo "all artefacts regenerated; CSVs in results/"
