#!/usr/bin/env python3
"""Validate fbf observability artefacts: JSONL run traces and Prometheus snapshots.

Usage:
    scripts/check_trace.py TRACE.jsonl [--chrome OUT.json] [--flows]
    scripts/check_trace.py --prom METRICS.prom [TRACE.jsonl]

Trace mode checks every line is a standalone JSON object shaped like a
chrome trace event: `name`/`cat` strings, known phase `ph`, non-negative
microsecond timestamp, `pid`/`tid` integers, `args` object; complete
events ("X") additionally carry a non-negative `dur`, and flow events
("s"/"t"/"f") an integer `id`. Exits non-zero (printing the offending
line number) on the first malformed line, so CI can gate on it.

With `--flows` the causal structure is validated too: spans carrying a
`trace_id` are reassembled into one tree per trace — every non-zero
`parent_id` must resolve to a `span_id` within the same trace and each
completed trace has exactly one root span (`parent_id` 0). Traces whose
root span is still open (a flight-recorder dump taken mid-request) are
classified in-flight and held only to internal consistency. Flow
records must agree (every flow id opens with exactly one "s"; every
"t"/"f" refers to an opened id). Prints a tree/span summary.

With `--chrome OUT.json` the validated events are re-wrapped as
`{"traceEvents": [...]}` — the JSON-array form chrome://tracing and
https://ui.perfetto.dev load directly.

With `--prom METRICS.prom` (the file written by `fbf ... --metrics` or a
figure binary) the snapshot is checked against text-exposition format
0.0.4: legal metric names, every sample preceded by `# HELP`/`# TYPE`,
counters non-negative, histogram `_bucket` series cumulative/monotone and
ending in `+Inf`, with `_count` equal to the `+Inf` bucket. Prints a
one-line digest summary per request class.
"""

import argparse
import json
import re
import sys

KNOWN_PHASES = {"X", "i", "C", "M", "s", "t", "f"}
FLOW_PHASES = {"s", "t", "f"}

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def fail(lineno, msg, line=""):
    print(f"check_trace: line {lineno}: {msg}", file=sys.stderr)
    if line:
        print(f"  {line.rstrip()}", file=sys.stderr)
    sys.exit(1)


def check_event(lineno, line, ev):
    if not isinstance(ev, dict):
        fail(lineno, "event is not a JSON object", line)
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            fail(lineno, f"`{key}` must be a non-empty string", line)
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        fail(lineno, f"unknown phase {ph!r} (expected one of {sorted(KNOWN_PHASES)})", line)
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(lineno, "`ts` must be a non-negative number (microseconds)", line)
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            fail(lineno, f"`{key}` must be an integer", line)
    if not isinstance(ev.get("args"), dict):
        fail(lineno, "`args` must be an object", line)
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(lineno, "complete event needs a non-negative `dur`", line)
    if ph == "i" and ev.get("s") not in ("t", "p", "g"):
        fail(lineno, "instant event needs scope `s` in {t,p,g}", line)
    if ph in FLOW_PHASES and not isinstance(ev.get("id"), int):
        fail(lineno, "flow event needs an integer `id`", line)


def check_flows(events):
    """Reassemble causal trees: one rooted span tree per trace_id, plus
    flow-record consistency. Events arrive already shape-checked.

    Spans close leaf-first, so a *complete* trace (its root span present)
    must resolve every parent and have exactly one root. A trace whose
    root is still open — a flight-recorder dump taken mid-request is the
    normal case — has no root span yet and its closed spans may point at
    open ancestors; those traces are classified in-flight and only
    checked for internal consistency (unique span ids, at most one
    root)."""
    # trace_id -> {span_id: parent_id} for Complete spans carrying ctx.
    spans = {}
    for ev in events:
        if ev["ph"] != "X":
            continue
        args = ev["args"]
        trace = args.get("trace_id")
        span = args.get("span_id")
        if trace is None or span is None:
            continue
        parent = args.get("parent_id", 0)
        if span in spans.setdefault(trace, {}):
            fail(0, f"trace {trace}: span_id {span} appears on two spans")
        spans[trace][span] = parent

    if not spans:
        fail(0, "--flows: no spans carry a trace_id (tracing not enabled?)")

    complete, open_traces = 0, 0
    for trace, tree in sorted(spans.items()):
        roots = [s for s, p in tree.items() if p == 0]
        if len(roots) > 1:
            fail(0, f"trace {trace}: expected at most one root span, got {len(roots)}")
        if not roots:
            open_traces += 1
            continue
        complete += 1
        for span, parent in tree.items():
            if parent != 0 and parent not in tree:
                fail(0, f"trace {trace}: span {span} has unresolvable parent {parent}")

    # Point events (instants/counters) of complete traces must name a
    # parent span inside their trace.
    orphan_points = 0
    for ev in events:
        if ev["ph"] not in ("i", "C"):
            continue
        args = ev["args"]
        trace, parent = args.get("trace_id"), args.get("parent_id", 0)
        if trace is None or parent == 0:
            continue
        tree = spans.get(trace, {})
        if not any(p == 0 for p in tree.values()):
            continue  # in-flight trace: the parent may still be open
        if parent not in tree:
            orphan_points += 1
    if orphan_points:
        fail(0, f"--flows: {orphan_points} point events name a parent span outside their trace")

    # Flow records: every id opens with exactly one "s"; "t"/"f" only
    # refer to opened ids.
    opened = {}
    for ev in events:
        if ev["ph"] == "s":
            opened[ev["id"]] = opened.get(ev["id"], 0) + 1
    for fid, n in opened.items():
        if n != 1:
            fail(0, f"--flows: flow id {fid} opened {n} times (expected one `s`)")
    for ev in events:
        if ev["ph"] in ("t", "f") and ev["id"] not in opened:
            fail(0, f"--flows: flow phase {ev['ph']!r} id {ev['id']} never opened with `s`")

    total = sum(len(tree) for tree in spans.values())
    print(
        f"check_trace: flows OK — {complete} complete trees, {open_traces} in-flight, "
        f"{total} spans, {len(opened)} flow ids"
    )


def prom_fail(lineno, msg, line=""):
    print(f"check_trace: prom line {lineno}: {msg}", file=sys.stderr)
    if line:
        print(f"  {line.rstrip()}", file=sys.stderr)
    sys.exit(1)


def check_prom(path):
    """Validate a Prometheus text-exposition snapshot; return parsed samples."""
    declared_type = {}  # base metric name -> type from `# TYPE`
    samples = []  # (lineno, name, labels-dict, value)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not METRIC_NAME_RE.match(parts[2]):
                    prom_fail(lineno, "malformed HELP/TYPE line", line)
                if parts[1] == "TYPE":
                    if parts[3] not in ("counter", "gauge", "histogram"):
                        prom_fail(lineno, f"unknown metric type {parts[3]!r}", line)
                    declared_type[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                prom_fail(lineno, "unparseable sample line", line)
            labels = {}
            for item in filter(None, (m.group("labels") or "").split(",")):
                key, _, raw = item.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    prom_fail(lineno, f"unquoted label value in {item!r}", line)
                labels[key] = raw[1:-1]
            try:
                value = float(m.group("value"))
            except ValueError:
                prom_fail(lineno, f"non-numeric sample value {m.group('value')!r}", line)
            samples.append((lineno, m.group("name"), labels, value))

    if not samples:
        prom_fail(0, "snapshot has no samples")

    histogram_buckets = {}  # (base, frozenset(non-le labels)) -> [(le, value)]
    counts = {}
    for lineno, name, labels, value in samples:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared_type:
                base = name[: -len(suffix)]
                break
        mtype = declared_type.get(base)
        if mtype is None:
            prom_fail(lineno, f"sample {name!r} has no preceding # TYPE")
        if mtype == "counter" and value < 0:
            prom_fail(lineno, f"counter {name} is negative ({value})")
        if name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                prom_fail(lineno, f"{name} bucket without `le` label")
            key = (base, frozenset((k, v) for k, v in labels.items() if k != "le"))
            histogram_buckets.setdefault(key, []).append(
                (float("inf") if le == "+Inf" else float(le), value)
            )
        if name.endswith("_count"):
            key = (base, frozenset(labels.items()))
            counts[key] = (lineno, value)

    for (base, labelset), buckets in histogram_buckets.items():
        les = [le for le, _ in buckets]
        if les != sorted(les):
            prom_fail(0, f"{base}{dict(labelset)}: bucket `le` bounds not ascending")
        values = [v for _, v in buckets]
        if values != sorted(values):
            prom_fail(0, f"{base}{dict(labelset)}: cumulative buckets not monotone")
        if les[-1] != float("inf"):
            prom_fail(0, f"{base}{dict(labelset)}: missing +Inf bucket")
        lineno_count = counts.get((base, labelset))
        if lineno_count is None:
            prom_fail(0, f"{base}{dict(labelset)}: histogram without _count")
        if lineno_count[1] != values[-1]:
            prom_fail(
                lineno_count[0],
                f"{base}{dict(labelset)}: _count {lineno_count[1]} != +Inf bucket {values[-1]}",
            )

    by_class = {}
    for _, name, labels, value in samples:
        if name == "fbf_read_latency_seconds_count":
            by_class.setdefault(labels.get("class", "?"), {})["count"] = value
        if name == "fbf_read_latency_p99_seconds":
            by_class.setdefault(labels.get("class", "?"), {})["p99"] = value
    for cls in sorted(by_class):
        d = by_class[cls]
        print(
            f"check_trace: prom class {cls}: n={int(d.get('count', 0))}"
            f" p99={d.get('p99', 0.0) * 1e3:.3f}ms"
        )
    print(
        f"check_trace: prom OK — {len(samples)} samples, "
        f"{len(declared_type)} metrics, {len(histogram_buckets)} histogram series"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?", help="JSONL trace emitted via --trace / FBF_TRACE")
    ap.add_argument("--chrome", metavar="OUT", help="write a chrome://tracing JSON array file")
    ap.add_argument("--prom", metavar="METRICS", help="validate a Prometheus snapshot too")
    ap.add_argument(
        "--flows",
        action="store_true",
        help="validate causal trees: one root per trace_id, resolvable parents, flow records",
    )
    opts = ap.parse_args()

    if opts.prom:
        check_prom(opts.prom)
    if not opts.trace:
        if not opts.prom:
            ap.error("need a trace file, --prom, or both")
        return

    events = []
    counts = {}
    with open(opts.trace, encoding="utf-8") as fh:
        lineno = 0
        for lineno, line in enumerate(fh, start=1):
            if not line.endswith("\n"):
                fail(lineno, "unterminated final line (trace not flushed?)", line)
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}", line)
            check_event(lineno, line, ev)
            events.append(ev)
            counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    if not events:
        fail(0, "trace is empty")
    if counts.get("M", 0) == 0:
        fail(1, "missing process_name metadata event")

    summary = ", ".join(f"{n} {ph}" for ph, n in sorted(counts.items()))
    print(f"check_trace: OK — {len(events)} events ({summary})")

    if opts.flows:
        check_flows(events)

    if opts.chrome:
        with open(opts.chrome, "w", encoding="utf-8") as out:
            json.dump({"traceEvents": events}, out)
            out.write("\n")
        print(f"check_trace: chrome://tracing file written to {opts.chrome}")


if __name__ == "__main__":
    main()
