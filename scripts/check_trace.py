#!/usr/bin/env python3
"""Validate fbf observability artefacts: JSONL run traces and Prometheus snapshots.

Usage:
    scripts/check_trace.py TRACE.jsonl [--chrome OUT.json]
    scripts/check_trace.py --prom METRICS.prom [TRACE.jsonl]

Trace mode checks every line is a standalone JSON object shaped like a
chrome trace event: `name`/`cat` strings, known phase `ph`, non-negative
microsecond timestamp, `pid`/`tid` integers, `args` object; complete
events ("X") additionally carry a non-negative `dur`. Exits non-zero
(printing the offending line number) on the first malformed line, so CI
can gate on it.

With `--chrome OUT.json` the validated events are re-wrapped as
`{"traceEvents": [...]}` — the JSON-array form chrome://tracing and
https://ui.perfetto.dev load directly.

With `--prom METRICS.prom` (the file written by `fbf ... --metrics` or a
figure binary) the snapshot is checked against text-exposition format
0.0.4: legal metric names, every sample preceded by `# HELP`/`# TYPE`,
counters non-negative, histogram `_bucket` series cumulative/monotone and
ending in `+Inf`, with `_count` equal to the `+Inf` bucket. Prints a
one-line digest summary per request class.
"""

import argparse
import json
import re
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def fail(lineno, msg, line=""):
    print(f"check_trace: line {lineno}: {msg}", file=sys.stderr)
    if line:
        print(f"  {line.rstrip()}", file=sys.stderr)
    sys.exit(1)


def check_event(lineno, line, ev):
    if not isinstance(ev, dict):
        fail(lineno, "event is not a JSON object", line)
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            fail(lineno, f"`{key}` must be a non-empty string", line)
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        fail(lineno, f"unknown phase {ph!r} (expected one of {sorted(KNOWN_PHASES)})", line)
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(lineno, "`ts` must be a non-negative number (microseconds)", line)
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            fail(lineno, f"`{key}` must be an integer", line)
    if not isinstance(ev.get("args"), dict):
        fail(lineno, "`args` must be an object", line)
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(lineno, "complete event needs a non-negative `dur`", line)
    if ph == "i" and ev.get("s") not in ("t", "p", "g"):
        fail(lineno, "instant event needs scope `s` in {t,p,g}", line)


def prom_fail(lineno, msg, line=""):
    print(f"check_trace: prom line {lineno}: {msg}", file=sys.stderr)
    if line:
        print(f"  {line.rstrip()}", file=sys.stderr)
    sys.exit(1)


def check_prom(path):
    """Validate a Prometheus text-exposition snapshot; return parsed samples."""
    declared_type = {}  # base metric name -> type from `# TYPE`
    samples = []  # (lineno, name, labels-dict, value)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not METRIC_NAME_RE.match(parts[2]):
                    prom_fail(lineno, "malformed HELP/TYPE line", line)
                if parts[1] == "TYPE":
                    if parts[3] not in ("counter", "gauge", "histogram"):
                        prom_fail(lineno, f"unknown metric type {parts[3]!r}", line)
                    declared_type[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                prom_fail(lineno, "unparseable sample line", line)
            labels = {}
            for item in filter(None, (m.group("labels") or "").split(",")):
                key, _, raw = item.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    prom_fail(lineno, f"unquoted label value in {item!r}", line)
                labels[key] = raw[1:-1]
            try:
                value = float(m.group("value"))
            except ValueError:
                prom_fail(lineno, f"non-numeric sample value {m.group('value')!r}", line)
            samples.append((lineno, m.group("name"), labels, value))

    if not samples:
        prom_fail(0, "snapshot has no samples")

    histogram_buckets = {}  # (base, frozenset(non-le labels)) -> [(le, value)]
    counts = {}
    for lineno, name, labels, value in samples:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared_type:
                base = name[: -len(suffix)]
                break
        mtype = declared_type.get(base)
        if mtype is None:
            prom_fail(lineno, f"sample {name!r} has no preceding # TYPE")
        if mtype == "counter" and value < 0:
            prom_fail(lineno, f"counter {name} is negative ({value})")
        if name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                prom_fail(lineno, f"{name} bucket without `le` label")
            key = (base, frozenset((k, v) for k, v in labels.items() if k != "le"))
            histogram_buckets.setdefault(key, []).append(
                (float("inf") if le == "+Inf" else float(le), value)
            )
        if name.endswith("_count"):
            key = (base, frozenset(labels.items()))
            counts[key] = (lineno, value)

    for (base, labelset), buckets in histogram_buckets.items():
        les = [le for le, _ in buckets]
        if les != sorted(les):
            prom_fail(0, f"{base}{dict(labelset)}: bucket `le` bounds not ascending")
        values = [v for _, v in buckets]
        if values != sorted(values):
            prom_fail(0, f"{base}{dict(labelset)}: cumulative buckets not monotone")
        if les[-1] != float("inf"):
            prom_fail(0, f"{base}{dict(labelset)}: missing +Inf bucket")
        lineno_count = counts.get((base, labelset))
        if lineno_count is None:
            prom_fail(0, f"{base}{dict(labelset)}: histogram without _count")
        if lineno_count[1] != values[-1]:
            prom_fail(
                lineno_count[0],
                f"{base}{dict(labelset)}: _count {lineno_count[1]} != +Inf bucket {values[-1]}",
            )

    by_class = {}
    for _, name, labels, value in samples:
        if name == "fbf_read_latency_seconds_count":
            by_class.setdefault(labels.get("class", "?"), {})["count"] = value
        if name == "fbf_read_latency_p99_seconds":
            by_class.setdefault(labels.get("class", "?"), {})["p99"] = value
    for cls in sorted(by_class):
        d = by_class[cls]
        print(
            f"check_trace: prom class {cls}: n={int(d.get('count', 0))}"
            f" p99={d.get('p99', 0.0) * 1e3:.3f}ms"
        )
    print(
        f"check_trace: prom OK — {len(samples)} samples, "
        f"{len(declared_type)} metrics, {len(histogram_buckets)} histogram series"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?", help="JSONL trace emitted via --trace / FBF_TRACE")
    ap.add_argument("--chrome", metavar="OUT", help="write a chrome://tracing JSON array file")
    ap.add_argument("--prom", metavar="METRICS", help="validate a Prometheus snapshot too")
    opts = ap.parse_args()

    if opts.prom:
        check_prom(opts.prom)
    if not opts.trace:
        if not opts.prom:
            ap.error("need a trace file, --prom, or both")
        return

    events = []
    counts = {}
    with open(opts.trace, encoding="utf-8") as fh:
        lineno = 0
        for lineno, line in enumerate(fh, start=1):
            if not line.endswith("\n"):
                fail(lineno, "unterminated final line (trace not flushed?)", line)
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}", line)
            check_event(lineno, line, ev)
            events.append(ev)
            counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    if not events:
        fail(0, "trace is empty")
    if counts.get("M", 0) == 0:
        fail(1, "missing process_name metadata event")

    summary = ", ".join(f"{n} {ph}" for ph, n in sorted(counts.items()))
    print(f"check_trace: OK — {len(events)} events ({summary})")

    if opts.chrome:
        with open(opts.chrome, "w", encoding="utf-8") as out:
            json.dump({"traceEvents": events}, out)
            out.write("\n")
        print(f"check_trace: chrome://tracing file written to {opts.chrome}")


if __name__ == "__main__":
    main()
