#!/usr/bin/env python3
"""Validate an fbf JSONL run trace (and optionally convert it for chrome://tracing).

Usage:
    scripts/check_trace.py TRACE.jsonl [--chrome OUT.json]

Checks every line is a standalone JSON object shaped like a chrome trace
event: `name`/`cat` strings, known phase `ph`, non-negative microsecond
timestamp, `pid`/`tid` integers, `args` object; complete events ("X")
additionally carry a non-negative `dur`. Exits non-zero (printing the
offending line number) on the first malformed line, so CI can gate on it.

With `--chrome OUT.json` the validated events are re-wrapped as
`{"traceEvents": [...]}` — the JSON-array form chrome://tracing and
https://ui.perfetto.dev load directly.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}


def fail(lineno, msg, line=""):
    print(f"check_trace: line {lineno}: {msg}", file=sys.stderr)
    if line:
        print(f"  {line.rstrip()}", file=sys.stderr)
    sys.exit(1)


def check_event(lineno, line, ev):
    if not isinstance(ev, dict):
        fail(lineno, "event is not a JSON object", line)
    for key in ("name", "cat"):
        if not isinstance(ev.get(key), str) or not ev[key]:
            fail(lineno, f"`{key}` must be a non-empty string", line)
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        fail(lineno, f"unknown phase {ph!r} (expected one of {sorted(KNOWN_PHASES)})", line)
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(lineno, "`ts` must be a non-negative number (microseconds)", line)
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            fail(lineno, f"`{key}` must be an integer", line)
    if not isinstance(ev.get("args"), dict):
        fail(lineno, "`args` must be an object", line)
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(lineno, "complete event needs a non-negative `dur`", line)
    if ph == "i" and ev.get("s") not in ("t", "p", "g"):
        fail(lineno, "instant event needs scope `s` in {t,p,g}", line)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace emitted via --trace / FBF_TRACE")
    ap.add_argument("--chrome", metavar="OUT", help="write a chrome://tracing JSON array file")
    opts = ap.parse_args()

    events = []
    counts = {}
    with open(opts.trace, encoding="utf-8") as fh:
        lineno = 0
        for lineno, line in enumerate(fh, start=1):
            if not line.endswith("\n"):
                fail(lineno, "unterminated final line (trace not flushed?)", line)
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}", line)
            check_event(lineno, line, ev)
            events.append(ev)
            counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    if not events:
        fail(0, "trace is empty")
    if counts.get("M", 0) == 0:
        fail(1, "missing process_name metadata event")

    summary = ", ".join(f"{n} {ph}" for ph, n in sorted(counts.items()))
    print(f"check_trace: OK — {len(events)} events ({summary})")

    if opts.chrome:
        with open(opts.chrome, "w", encoding="utf-8") as out:
            json.dump({"traceEvents": events}, out)
            out.write("\n")
        print(f"check_trace: chrome://tracing file written to {opts.chrome}")


if __name__ == "__main__":
    main()
