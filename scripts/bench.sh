#!/usr/bin/env bash
# Run the hot-path performance baseline and write BENCH_<date>.json at the
# repo root (see crates/bench/src/bin/perf_baseline.rs for the schema and
# bench list). Knobs:
#   --quick                shorthand for FBF_BENCH_QUICK=1
#   FBF_BENCH_QUICK=1      tiny iteration counts (CI smoke)
#   FBF_BENCH_OUT=<path>   write the snapshot elsewhere
#   FBF_BENCH_DATE=<date>  override the YYYY-MM-DD stamp
# Gate a fresh snapshot against a committed baseline with:
#   cargo run --release -q -p fbf-bench --bin perf_gate -- BASELINE.json NEW.json [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

for arg in "$@"; do
    case "$arg" in
        --quick) export FBF_BENCH_QUICK=1 ;;
        *) echo "bench.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cargo build --release -q -p fbf-bench --bin perf_baseline
cargo run --release -q -p fbf-bench --bin perf_baseline

# The snapshot carries the observability guard: `engine_run_8x` is the
# obs-disabled engine throughput, `engine_run_8x_obs` the same workload
# with tracing enabled (no-op subscriber), and `obs_span_disabled` the
# per-span cost when no subscriber is installed. Surface the ratio here
# so a regression is visible without opening the JSON.
out="${FBF_BENCH_OUT:-BENCH_${FBF_BENCH_DATE:-$(date -u +%F)}.json}"
python3 - "$out" <<'EOF'
import json, sys
benches = {b["name"]: b["ns_per_op"] for b in json.load(open(sys.argv[1]))["benches"]}
off, on = benches.get("engine_run_8x"), benches.get("engine_run_8x_obs")
if off and on:
    print(f"obs overhead (engine_run_8x_obs / engine_run_8x): {on / off:.3f}x "
          f"({off:.1f} -> {on:.1f} ns/op)")
nf = benches.get("engine_run_8x_faults_disabled")
if off and nf:
    print(f"fault-layer disabled-path overhead "
          f"(engine_run_8x_faults_disabled / engine_run_8x): {nf / off:.3f}x "
          f"({off:.1f} -> {nf:.1f} ns/op, expect ~1.0x)")
ring_off, ring_on = benches.get("obs_ring_disabled"), benches.get("obs_ring_enabled")
if off and ring_off:
    print(f"flight-recorder disabled-path overhead "
          f"(obs_ring_disabled / engine_run_8x): {ring_off / off:.3f}x "
          f"({off:.1f} -> {ring_off:.1f} ns/op, expect ~1.0x)")
if on and ring_on:
    print(f"flight-recorder enabled overhead "
          f"(obs_ring_enabled / engine_run_8x_obs): {ring_on / on:.3f}x "
          f"({on:.1f} -> {ring_on:.1f} ns/op, budget 1.05x)")
EOF
