#!/usr/bin/env bash
# Run the hot-path performance baseline and write BENCH_<date>.json at the
# repo root (see crates/bench/src/bin/perf_baseline.rs for the schema and
# bench list). Knobs:
#   FBF_BENCH_QUICK=1      tiny iteration counts (CI smoke)
#   FBF_BENCH_OUT=<path>   write the snapshot elsewhere
#   FBF_BENCH_DATE=<date>  override the YYYY-MM-DD stamp
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p fbf-bench --bin perf_baseline
cargo run --release -q -p fbf-bench --bin perf_baseline
